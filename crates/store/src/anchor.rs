//! Blockchain anchoring of database segments.
//!
//! The "blockchain half" of the hybrid design (ref \[9\]): an
//! [`AnchorContract`] records segment Merkle roots on-chain, and an
//! [`AnchoredStore`] couples a [`KvLog`] with a chain
//! node, anchoring every sealed segment and answering audits.

use crate::error::StoreError;
use crate::kvlog::KvLog;
use crate::wal::Wal;
use drams_chain::contract::{ExecutionContext, SmartContract};
use drams_chain::error::ChainError;
use drams_chain::node::Node;
use drams_chain::tx::TxId;
use drams_crypto::codec::{Reader, Writer};
use drams_crypto::schnorr::Keypair;
use drams_crypto::sha256::Digest;

/// The anchor contract's registry name.
pub const ANCHOR_CONTRACT: &str = "drams-anchor";

/// On-chain registry of segment roots.
#[derive(Debug, Default)]
pub struct AnchorContract;

impl AnchorContract {
    fn key(segment: u64) -> Vec<u8> {
        let mut k = b"root/".to_vec();
        k.extend_from_slice(&segment.to_be_bytes());
        k
    }

    /// Encodes an `anchor` call payload.
    #[must_use]
    pub fn anchor_payload(segment: u64, root: Digest) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(segment);
        w.put_raw(root.as_bytes());
        w.into_bytes()
    }
}

impl SmartContract for AnchorContract {
    fn name(&self) -> &str {
        ANCHOR_CONTRACT
    }

    fn execute(
        &self,
        ctx: &mut ExecutionContext<'_>,
        method: &str,
        payload: &[u8],
    ) -> Result<(), String> {
        match method {
            "anchor" => {
                let mut r = Reader::new(payload);
                let segment = r.get_u64().map_err(|e| e.to_string())?;
                let root = r.get_array::<32>().map_err(|e| e.to_string())?;
                r.finish().map_err(|e| e.to_string())?;
                let key = Self::key(segment);
                if ctx.storage.get(&key).is_some() {
                    return Err(format!("segment {segment} already anchored"));
                }
                ctx.storage.insert(key, root.to_vec());
                ctx.emit("anchored", payload.to_vec());
                Ok(())
            }
            other => Err(format!("unknown method `{other}`")),
        }
    }
}

/// Outcome of auditing one entry of the hybrid store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The entry is covered by an on-chain anchor and its proof verifies.
    Verified,
    /// The entry's proof fails against the anchored root — the database
    /// was tampered with after anchoring.
    TamperDetected,
    /// The entry's segment is not yet anchored: it sits in the
    /// tamper-exposure window and only database-level trust covers it.
    InExposureWindow,
    /// No such entry.
    Unknown,
}

/// A [`KvLog`] coupled to a blockchain node that anchors every sealed
/// segment.
pub struct AnchoredStore {
    log: KvLog,
    keypair: Keypair,
    anchors_submitted: u64,
    /// Optional durable journal of appended entries. When attached,
    /// every entry is written ahead to the WAL (whose [`crate::backend::Durability`]
    /// decides whether that write is synced immediately or only on an
    /// explicit [`AnchoredStore::sync`]) and [`AnchoredStore::recover`]
    /// rebuilds the in-memory log — including segment Merkle roots —
    /// after a crash.
    wal: Option<Wal>,
}

impl std::fmt::Debug for AnchoredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnchoredStore")
            .field("entries", &self.log.len())
            .field("anchors_submitted", &self.anchors_submitted)
            .finish_non_exhaustive()
    }
}

impl AnchoredStore {
    /// Creates a store that anchors every `anchor_period` entries.
    ///
    /// # Panics
    ///
    /// Panics when `anchor_period` is 0.
    #[must_use]
    pub fn new(anchor_period: usize, keypair: Keypair) -> Self {
        AnchoredStore {
            log: KvLog::new(anchor_period),
            keypair,
            anchors_submitted: 0,
            wal: None,
        }
    }

    /// Creates a store whose appended entries are journaled ahead into
    /// `wal`. The WAL's configured durability decides when journal
    /// writes are synced — explicit instead of implicit: in-memory for
    /// unit tests, buffered for benches, flushed for crash-recovery.
    ///
    /// # Panics
    ///
    /// Panics when `anchor_period` is 0.
    #[must_use]
    pub fn new_durable(anchor_period: usize, keypair: Keypair, wal: Wal) -> Self {
        let mut store = AnchoredStore::new(anchor_period, keypair);
        store.wal = Some(wal);
        store
    }

    /// Rebuilds a durable store from its WAL after a crash: every
    /// journaled entry is re-appended, deterministically re-sealing the
    /// same segments with the same Merkle roots (anchor *submission* is
    /// the chain's business — the on-chain anchors are already durable
    /// there).
    ///
    /// Unlike the Logging Interface's backlog WAL, this journal is never
    /// snapshotted or pruned: the [`KvLog`] serves reads over its entire
    /// history, so the WAL is the store's full durable mirror — it grows
    /// exactly with the data, not beyond it.
    ///
    /// # Errors
    ///
    /// Propagates WAL replay failures.
    ///
    /// # Panics
    ///
    /// Panics when `anchor_period` is 0.
    pub fn recover(anchor_period: usize, keypair: Keypair, wal: Wal) -> Result<Self, StoreError> {
        let mut log = KvLog::new(anchor_period);
        let mut sealed = 0;
        for (_, entry) in wal.replay()? {
            if log.append(entry).1.is_some() {
                sealed += 1;
            }
        }
        Ok(AnchoredStore {
            log,
            keypair,
            anchors_submitted: sealed,
            wal: Some(wal),
        })
    }

    /// Forces buffered journal writes to durable storage (meaningful
    /// under [`crate::backend::Durability::Buffered`]; a no-op without a
    /// WAL or under `Flushed`).
    ///
    /// # Errors
    ///
    /// Propagates backend sync failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(wal) = &mut self.wal {
            wal.sync()?;
        }
        Ok(())
    }

    /// The attached journal, if any (crash-recovery harness hook).
    pub fn take_wal(&mut self) -> Option<Wal> {
        self.wal.take()
    }

    /// The underlying log (read-only).
    #[must_use]
    pub fn log(&self) -> &KvLog {
        &self.log
    }

    /// Mutable access to the log — the attack surface for E3's
    /// tamper-detection measurements.
    pub fn log_mut(&mut self) -> &mut KvLog {
        &mut self.log
    }

    /// Anchors submitted so far.
    #[must_use]
    pub fn anchors_submitted(&self) -> u64 {
        self.anchors_submitted
    }

    /// Appends an entry; when a segment seals, its root is submitted as an
    /// anchoring transaction on `node`.
    ///
    /// Returns `(sequence number, anchor tx id if one was submitted)`.
    ///
    /// # Errors
    ///
    /// Propagates chain submission failures.
    pub fn append(
        &mut self,
        entry: Vec<u8>,
        node: &mut Node,
    ) -> Result<(u64, Option<TxId>), ChainError> {
        if let Some(wal) = &mut self.wal {
            // Write-ahead: the journal record lands (per the WAL's
            // durability policy) before the in-memory log accepts.
            wal.append(&entry)
                .map_err(|e| ChainError::Journal(e.to_string()))?;
        }
        let (seq, sealed) = self.log.append(entry);
        if let Some(segment) = sealed {
            let payload = AnchorContract::anchor_payload(segment.index, segment.root());
            let tx = node.submit_call(&self.keypair, ANCHOR_CONTRACT, "anchor", payload)?;
            self.anchors_submitted += 1;
            return Ok((seq, Some(tx)));
        }
        Ok((seq, None))
    }

    /// Audits the entry at `seq` against the on-chain anchors.
    #[must_use]
    pub fn audit(&self, seq: u64, node: &Node) -> AuditOutcome {
        if seq >= self.log.len() {
            return AuditOutcome::Unknown;
        }
        let Some((segment, offset)) = self.log.locate(seq) else {
            return AuditOutcome::InExposureWindow;
        };
        let Some(storage) = node.host().storage_of(ANCHOR_CONTRACT) else {
            return AuditOutcome::InExposureWindow;
        };
        let Some(root_bytes) = storage.get(&AnchorContract::key(segment.index)) else {
            // Sealed but the anchor tx has not committed yet.
            return AuditOutcome::InExposureWindow;
        };
        let mut root = [0u8; 32];
        root.copy_from_slice(root_bytes);
        let root = Digest::from(root);
        let Some(proof) = segment.proof(offset) else {
            return AuditOutcome::Unknown;
        };
        let Some(entry) = segment.entry(offset) else {
            return AuditOutcome::Unknown;
        };
        if proof.verify(&root, entry) {
            AuditOutcome::Verified
        } else {
            AuditOutcome::TamperDetected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_chain::chain::ChainConfig;

    fn setup(period: usize) -> (AnchoredStore, Node) {
        let mut node = Node::new(ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            ..ChainConfig::default()
        });
        node.register_contract(Box::new(AnchorContract));
        let store = AnchoredStore::new(period, Keypair::from_seed(b"store"));
        (store, node)
    }

    fn entry(i: u64) -> Vec<u8> {
        format!("entry-{i}").into_bytes()
    }

    #[test]
    fn anchors_every_period() {
        let (mut store, mut node) = setup(4);
        let mut anchors = 0;
        for i in 0..12 {
            let (_, tx) = store.append(entry(i), &mut node).unwrap();
            if tx.is_some() {
                anchors += 1;
            }
        }
        assert_eq!(anchors, 3);
        assert_eq!(store.anchors_submitted(), 3);
    }

    #[test]
    fn audit_verifies_after_commit() {
        let (mut store, mut node) = setup(4);
        for i in 0..4 {
            store.append(entry(i), &mut node).unwrap();
        }
        // Anchor submitted but not mined: still exposed.
        assert_eq!(store.audit(0, &node), AuditOutcome::InExposureWindow);
        node.mine_block(1_000).unwrap();
        assert_eq!(store.audit(0, &node), AuditOutcome::Verified);
        assert_eq!(store.audit(3, &node), AuditOutcome::Verified);
    }

    #[test]
    fn tail_entries_are_in_window() {
        let (mut store, mut node) = setup(4);
        for i in 0..6 {
            store.append(entry(i), &mut node).unwrap();
        }
        node.mine_block(1_000).unwrap();
        assert_eq!(store.audit(3, &node), AuditOutcome::Verified);
        assert_eq!(store.audit(4, &node), AuditOutcome::InExposureWindow);
        assert_eq!(store.audit(5, &node), AuditOutcome::InExposureWindow);
        assert_eq!(store.audit(99, &node), AuditOutcome::Unknown);
    }

    #[test]
    fn post_anchor_tamper_is_detected() {
        let (mut store, mut node) = setup(4);
        for i in 0..4 {
            store.append(entry(i), &mut node).unwrap();
        }
        node.mine_block(1_000).unwrap();
        assert!(store.log_mut().tamper(2, b"forged".to_vec()));
        assert_eq!(store.audit(2, &node), AuditOutcome::TamperDetected);
        // Untouched entries still verify.
        assert_eq!(store.audit(1, &node), AuditOutcome::Verified);
    }

    #[test]
    fn pre_anchor_tamper_is_invisible_the_window_cost() {
        // The honest-but-late case the paper's trade-off discussion is
        // about: a tamper *inside* the exposure window goes undetected
        // because the root is computed over the already-tampered data.
        let (mut store, mut node) = setup(4);
        store.append(entry(0), &mut node).unwrap();
        store.append(entry(1), &mut node).unwrap();
        assert!(store.log_mut().tamper(1, b"forged-early".to_vec()));
        store.append(entry(2), &mut node).unwrap();
        store.append(entry(3), &mut node).unwrap();
        node.mine_block(1_000).unwrap();
        assert_eq!(store.audit(1, &node), AuditOutcome::Verified);
    }

    #[test]
    fn durable_store_recovers_with_identical_roots() {
        use crate::backend::{Durability, MemBackend};
        use crate::wal::{Wal, WalConfig};

        let (_, mut node) = setup(4);
        let wal = Wal::open(
            Box::new(MemBackend::new()),
            WalConfig {
                segment_records: 16,
                durability: Durability::Flushed,
            },
        )
        .unwrap();
        let mut store = AnchoredStore::new_durable(4, Keypair::from_seed(b"store"), wal);
        for i in 0..10 {
            store.append(entry(i), &mut node).unwrap();
        }
        node.mine_block(1_000).unwrap();
        let roots: Vec<_> = store
            .log()
            .segments()
            .iter()
            .map(crate::kvlog::Segment::root)
            .collect();
        let mut wal = store.take_wal().unwrap();
        drop(store); // the process dies
        wal.simulate_crash().unwrap();

        let recovered = AnchoredStore::recover(4, Keypair::from_seed(b"store"), wal).unwrap();
        assert_eq!(recovered.log().len(), 10);
        assert_eq!(recovered.log().unsealed_len(), 2);
        assert_eq!(recovered.anchors_submitted(), 2);
        let recovered_roots: Vec<_> = recovered
            .log()
            .segments()
            .iter()
            .map(crate::kvlog::Segment::root)
            .collect();
        assert_eq!(roots, recovered_roots, "re-sealed Merkle roots match");
        // Audits against the pre-crash on-chain anchors still verify.
        assert_eq!(recovered.audit(0, &node), AuditOutcome::Verified);
        assert_eq!(recovered.audit(7, &node), AuditOutcome::Verified);
        assert_eq!(recovered.audit(9, &node), AuditOutcome::InExposureWindow);
    }

    #[test]
    fn double_anchor_rejected_by_contract() {
        let (_, mut node) = setup(4);
        let kp = Keypair::from_seed(b"store");
        let payload = AnchorContract::anchor_payload(0, Digest::of(b"root"));
        node.submit_call(&kp, ANCHOR_CONTRACT, "anchor", payload.clone())
            .unwrap();
        node.mine_block(1).unwrap();
        let id = node
            .submit_call(&kp, ANCHOR_CONTRACT, "anchor", payload)
            .unwrap();
        node.mine_block(2).unwrap();
        assert!(matches!(
            node.receipt(&id).unwrap().1,
            drams_chain::contract::TxStatus::Failed(_)
        ));
    }
}
