//! Corruption-geometry tests: every record boundary of a multi-segment
//! WAL is damaged in turn, and recovery must land on exactly one of two
//! outcomes — torn-tail truncation to the last intact record (damage at
//! the very end of the log) or a refusal to open with
//! [`StoreError::Corrupt`] pinpointing the failing frame (damage
//! anywhere else).
//!
//! The geometry is computed independently of the engine from the
//! documented on-disk format (24-byte segment header, 8-byte
//! length+CRC frame per record) and cross-checked against the real
//! files, so a drift in either the layout or the recovery state machine
//! shows up as an exact-offset mismatch rather than a vague failure.

use drams_store::backend::{Durability, FsBackend};
use drams_store::segment::{FRAME_LEN, HEADER_LEN};
use drams_store::wal::{segment_file_name, Wal, WalConfig};
use drams_store::StoreError;
use std::fs;
use std::path::{Path, PathBuf};

/// Records per segment in every test below.
const SEGMENT_RECORDS: usize = 4;
/// Total appended records: 4 + 4 + 2 → three segment files, the last
/// one partially filled.
const TOTAL_RECORDS: u64 = 10;

const CONFIG: WalConfig = WalConfig {
    segment_records: SEGMENT_RECORDS,
    durability: Durability::Flushed,
};

/// Deterministic per-record payload with varying lengths (3..=7 bytes)
/// so frame offsets are not multiples of a single record size.
fn payload(seq: u64) -> Vec<u8> {
    vec![0xA0 ^ seq as u8; (seq as usize % 5) + 3]
}

/// Where one record lives on disk.
struct RecordSite {
    seq: u64,
    file: String,
    /// Byte offset of the record's frame (length word) within its file.
    frame_offset: u64,
    payload_len: u64,
    /// Last record of its segment file.
    final_in_segment: bool,
    /// Lives in the last segment file of the log.
    final_segment: bool,
}

/// Computes the frame offset of every record purely from the documented
/// format constants — no engine involvement.
fn geometry() -> Vec<RecordSite> {
    let segment_count = (TOTAL_RECORDS as usize).div_ceil(SEGMENT_RECORDS);
    let mut sites = Vec::new();
    for seq in 0..TOTAL_RECORDS {
        let segment = seq as usize / SEGMENT_RECORDS;
        let first_seq = (segment * SEGMENT_RECORDS) as u64;
        let mut offset = HEADER_LEN as u64;
        for prior in first_seq..seq {
            offset += FRAME_LEN as u64 + payload(prior).len() as u64;
        }
        sites.push(RecordSite {
            seq,
            file: segment_file_name(segment as u64),
            frame_offset: offset,
            payload_len: payload(seq).len() as u64,
            final_in_segment: seq + 1 == TOTAL_RECORDS || (seq + 1) as usize % SEGMENT_RECORDS == 0,
            final_segment: segment + 1 == segment_count,
        });
    }
    sites
}

/// Builds the pristine three-segment log once and returns every segment
/// file's bytes, cross-checking the computed geometry against the real
/// file lengths.
fn pristine_files(scratch: &Path) -> Vec<(String, Vec<u8>)> {
    fs::remove_dir_all(scratch).ok();
    let backend = FsBackend::open(scratch).expect("scratch dir");
    let mut wal = Wal::open(Box::new(backend), CONFIG).expect("fresh log opens");
    for seq in 0..TOTAL_RECORDS {
        assert_eq!(wal.append(&payload(seq)).expect("append"), seq);
    }
    assert_eq!(wal.segment_count(), 3);
    drop(wal);

    let mut files = Vec::new();
    for segment in 0..3u64 {
        let name = segment_file_name(segment);
        let bytes = fs::read(scratch.join(&name)).expect("segment file exists");
        // The last record site of this file predicts the file length.
        let last = geometry()
            .into_iter()
            .filter(|s| s.file == name)
            .next_back()
            .expect("segment has records");
        assert_eq!(
            bytes.len() as u64,
            last.frame_offset + FRAME_LEN as u64 + last.payload_len,
            "computed geometry disagrees with {name}"
        );
        files.push((name, bytes));
    }
    files
}

/// A per-test scratch directory under the system temp dir.
fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "drams-corruption-geometry-{tag}-{}",
        std::process::id()
    ))
}

/// Restores the pristine file set into `dir`, wiping anything a prior
/// case wrote (including recovery-time truncations).
fn restore(dir: &Path, files: &[(String, Vec<u8>)]) {
    fs::remove_dir_all(dir).ok();
    fs::create_dir_all(dir).expect("create case dir");
    for (name, bytes) in files {
        fs::write(dir.join(name), bytes).expect("restore segment");
    }
}

fn flip_byte(dir: &Path, file: &str, offset: u64) {
    let path = dir.join(file);
    let mut bytes = fs::read(&path).expect("read for flip");
    bytes[offset as usize] ^= 0xFF;
    fs::write(&path, bytes).expect("write flipped");
}

fn open_wal(dir: &Path) -> Result<Wal, StoreError> {
    Wal::open(Box::new(FsBackend::open(dir)?), CONFIG)
}

fn expect_corrupt(result: Result<Wal, StoreError>, file: &str, offset: u64, context: &str) {
    match result {
        Err(StoreError::Corrupt {
            file: got_file,
            offset: got_offset,
            ..
        }) => {
            assert_eq!(got_file, file, "{context}: wrong file blamed");
            assert_eq!(got_offset, offset, "{context}: wrong offset blamed");
        }
        Err(other) => panic!("{context}: expected Corrupt, got {other:?}"),
        Ok(_) => panic!("{context}: expected Corrupt, log opened"),
    }
}

/// A CRC-breaking flip (checksum word or payload byte) at every record
/// of every segment: only the final record of the final segment may be
/// repaired by truncation; everywhere else the damage has intact data
/// after it, so recovery must refuse with the exact frame offset.
#[test]
fn crc_flip_at_every_record_boundary() {
    let scratch = test_dir("crc-master");
    let files = pristine_files(&scratch);
    let dir = test_dir("crc-case");
    for site in geometry() {
        let flips = [
            ("crc word", site.frame_offset + 4),
            ("first payload byte", site.frame_offset + FRAME_LEN as u64),
            (
                "last payload byte",
                site.frame_offset + FRAME_LEN as u64 + site.payload_len - 1,
            ),
        ];
        for (what, position) in flips {
            let context = format!("seq {} ({what} @ {position})", site.seq);
            restore(&dir, &files);
            flip_byte(&dir, &site.file, position);
            let result = open_wal(&dir);
            if site.final_in_segment && site.final_segment {
                let wal = result.unwrap_or_else(|e| panic!("{context}: open failed: {e:?}"));
                let replayed = wal.replay().expect("replay after truncation");
                assert_eq!(replayed.len() as u64, site.seq, "{context}: replay length");
                assert_eq!(wal.next_seq(), site.seq, "{context}: next_seq");
                // Truncated to exactly the damaged record's boundary.
                let len = fs::metadata(dir.join(&site.file)).expect("tail file").len();
                assert_eq!(len, site.frame_offset, "{context}: truncation point");
            } else {
                expect_corrupt(result, &site.file, site.frame_offset, &context);
            }
        }
    }
}

/// Flipping the high byte of a record's length word makes the frame
/// claim an absurd payload, so the scan sees an incomplete record: a
/// torn tail. In the final segment that truncates the damaged record
/// *and everything after it in that file*; in a sealed segment it is
/// mid-log damage and must refuse to open.
#[test]
fn length_field_flip_tears_the_tail_exactly() {
    let scratch = test_dir("len-master");
    let files = pristine_files(&scratch);
    let dir = test_dir("len-case");
    for site in geometry() {
        let context = format!("seq {} (length word)", site.seq);
        restore(&dir, &files);
        flip_byte(&dir, &site.file, site.frame_offset);
        let result = open_wal(&dir);
        if site.final_segment {
            let wal = result.unwrap_or_else(|e| panic!("{context}: open failed: {e:?}"));
            let replayed = wal.replay().expect("replay after truncation");
            assert_eq!(replayed.len() as u64, site.seq, "{context}: replay length");
            for (seq, bytes) in &replayed {
                assert_eq!(bytes, &payload(*seq), "{context}: surviving record {seq}");
            }
            let len = fs::metadata(dir.join(&site.file)).expect("tail file").len();
            assert_eq!(len, site.frame_offset, "{context}: truncation point");
            // The log keeps accepting appends from the truncated seq.
            let mut wal = wal;
            assert_eq!(wal.append(b"after-repair").expect("append"), site.seq);
        } else {
            expect_corrupt(result, &site.file, site.frame_offset, &context);
        }
    }
}

/// Header damage is never repairable, even on the tail segment: a bad
/// magic is blamed at offset 0 and a bad version at offset 4, exactly
/// as the format documents.
#[test]
fn header_flips_are_rejected_with_exact_offsets() {
    let scratch = test_dir("header-master");
    let files = pristine_files(&scratch);
    let dir = test_dir("header-case");
    for segment in 0..3u64 {
        let name = segment_file_name(segment);
        for (what, position, blamed) in [
            ("magic first byte", 0u64, 0u64),
            ("magic last byte", 3, 0),
            ("version high byte", 4, 4),
            ("version low byte", 7, 4),
        ] {
            let context = format!("{name} ({what})");
            restore(&dir, &files);
            flip_byte(&dir, &name, position);
            expect_corrupt(open_wal(&dir), &name, blamed, &context);
        }
    }
}

/// Cutting the tail segment anywhere — exactly on a record boundary or
/// mid-frame/mid-payload — recovers cleanly to the last intact record,
/// and the next append reuses the first lost sequence number.
#[test]
fn truncation_of_the_tail_segment_recovers_to_record_boundaries() {
    let scratch = test_dir("trunc-master");
    let files = pristine_files(&scratch);
    let dir = test_dir("trunc-case");
    for site in geometry().into_iter().filter(|s| s.final_segment) {
        let cuts = [
            ("exact boundary", site.frame_offset),
            ("inside frame", site.frame_offset + 1),
            ("after frame", site.frame_offset + FRAME_LEN as u64),
            (
                "one byte short",
                site.frame_offset + FRAME_LEN as u64 + site.payload_len - 1,
            ),
        ];
        for (what, cut) in cuts {
            let context = format!("seq {} ({what} @ {cut})", site.seq);
            restore(&dir, &files);
            let path = dir.join(&site.file);
            let mut bytes = fs::read(&path).expect("read tail");
            bytes.truncate(cut as usize);
            fs::write(&path, bytes).expect("write cut tail");
            let mut wal = open_wal(&dir).unwrap_or_else(|e| panic!("{context}: {e:?}"));
            let replayed = wal.replay().expect("replay");
            assert_eq!(replayed.len() as u64, site.seq, "{context}: replay length");
            assert_eq!(
                wal.append(b"resumed").expect("append"),
                site.seq,
                "{context}"
            );
        }
    }
}

/// A tail segment cut below the 24-byte header is a torn rotation: the
/// file is dropped entirely and the log resumes where the previous
/// segment ended. The same cut on a sealed segment is mid-log damage.
#[test]
fn headerless_segment_dropped_at_tail_rejected_mid_log() {
    let scratch = test_dir("headerless-master");
    let files = pristine_files(&scratch);
    let dir = test_dir("headerless-case");

    // Tail: seg-00000002.wal shrinks below its header → dropped.
    restore(&dir, &files);
    let tail = segment_file_name(2);
    let bytes = fs::read(dir.join(&tail)).expect("tail");
    fs::write(dir.join(&tail), &bytes[..HEADER_LEN - 14]).expect("cut header");
    let mut wal = open_wal(&dir).expect("headerless tail is repairable");
    assert_eq!(wal.segment_count(), 2);
    assert_eq!(wal.replay().expect("replay").len(), 2 * SEGMENT_RECORDS);
    // The next append recreates a tail segment and reuses seq 8.
    assert_eq!(wal.append(b"fresh tail").expect("append"), 8);
    assert_eq!(wal.segment_count(), 3);

    // Mid-log: the same cut on sealed seg-00000001.wal refuses to open,
    // blamed at the start of its valid prefix (nothing scanned).
    restore(&dir, &files);
    let sealed = segment_file_name(1);
    let bytes = fs::read(dir.join(&sealed)).expect("sealed");
    fs::write(dir.join(&sealed), &bytes[..HEADER_LEN - 14]).expect("cut header");
    expect_corrupt(open_wal(&dir), &sealed, 0, "headerless sealed segment");
}

/// Removing a whole interior segment breaks first_seq continuity; the
/// follower segment is blamed and the log refuses to open rather than
/// silently replaying with a hole.
#[test]
fn missing_interior_segment_breaks_continuity() {
    let scratch = test_dir("continuity-master");
    let files = pristine_files(&scratch);
    let dir = test_dir("continuity-case");
    restore(&dir, &files);
    fs::remove_file(dir.join(segment_file_name(1))).expect("drop interior segment");
    match open_wal(&dir) {
        Err(StoreError::Corrupt { file, reason, .. }) => {
            assert_eq!(file, segment_file_name(2));
            assert!(reason.contains("continuity"), "reason: {reason}");
        }
        other => panic!("expected continuity error, got {other:?}"),
    }
}
