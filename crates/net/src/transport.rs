//! The TCP backend of the scenario runtime's [`Transport`] seam.
//!
//! [`TcpTransport`] keeps one connection per destination role and
//! performs one synchronous round-trip per wire message: write the
//! frame, read the endpoint's validated echo, hand the echoed frame
//! back to the scheduler. Endpoints are provisioned lazily through a
//! [`Provisioner`] — either an in-process thread per role
//! ([`ThreadProvisioner`], the loopback deployment) or a spawned
//! `drams-node` child process per role ([`ProcessProvisioner`]).
//!
//! A scripted service crash reaches the transport as
//! [`Transport::restart`]: the endpoint is retired (thread stopped /
//! process killed), the connection dropped, and the next frame for that
//! role re-provisions and reconnects — a real reconnect across a real
//! socket, at a possibly different address.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use drams_faas::transport::{Transport, TransportError, WireFrame, WireRole};

use crate::frame::{io_error, read_frame, write_frame, FrameReader};

/// How long a single blocked read may wait for the endpoint's echo
/// before the round-trip is abandoned and retried on a fresh
/// connection.
const READ_DEADLINE: Duration = Duration::from_secs(5);

/// Connection attempts per endpoint address (the listener of a freshly
/// spawned process may not be up yet).
const CONNECT_ATTEMPTS: u32 = 100;

/// Pause between connection attempts.
const CONNECT_PAUSE: Duration = Duration::from_millis(10);

/// Round-trip attempts per frame; each failure drops the connection and
/// reconnects, so this bounds the reconnect storm a flapping endpoint
/// can cause.
const ROUNDTRIP_ATTEMPTS: u32 = 5;

/// Provides (and tears down) the socket endpoint behind a role.
pub trait Provisioner {
    /// Returns the listen address of a live endpoint for `role`,
    /// creating one if none exists.
    fn provision(&mut self, role: WireRole) -> Result<SocketAddr, TransportError>;

    /// Tears down the current endpoint for `role` (stop the thread /
    /// kill the process). A later [`Provisioner::provision`] must
    /// produce a fresh endpoint.
    fn retire(&mut self, role: WireRole);

    /// Deployment-shape label for reports.
    fn label(&self) -> &'static str;
}

/// One endpoint thread per role, all inside the current process.
#[derive(Debug, Default)]
pub struct ThreadProvisioner {
    endpoints: HashMap<WireRole, crate::endpoint::NodeEndpoint>,
}

impl ThreadProvisioner {
    /// An empty provisioner; endpoints spawn on first contact.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Provisioner for ThreadProvisioner {
    fn provision(&mut self, role: WireRole) -> Result<SocketAddr, TransportError> {
        if let Some(ep) = self.endpoints.get(&role) {
            return Ok(ep.addr());
        }
        let ep = crate::endpoint::NodeEndpoint::spawn(role).map_err(io_error)?;
        let addr = ep.addr();
        self.endpoints.insert(role, ep);
        Ok(addr)
    }

    fn retire(&mut self, role: WireRole) {
        if let Some(ep) = self.endpoints.remove(&role) {
            ep.shutdown();
        }
    }

    fn label(&self) -> &'static str {
        "tcp-loopback"
    }
}

/// One `drams-node` child process per role.
///
/// Children are spawned with `--listen 127.0.0.1:0`; the provisioner
/// learns the actual port from the child's `listening on` banner, so a
/// restarted service may come back at a different address — exactly the
/// re-resolution a real deployment performs.
#[derive(Debug)]
pub struct ProcessProvisioner {
    binary: std::path::PathBuf,
    children: HashMap<WireRole, (Child, SocketAddr)>,
}

impl ProcessProvisioner {
    /// A provisioner spawning `binary` (the `drams-node` executable).
    #[must_use]
    pub fn new(binary: impl Into<std::path::PathBuf>) -> Self {
        ProcessProvisioner {
            binary: binary.into(),
            children: HashMap::new(),
        }
    }

    fn role_args(role: WireRole) -> Vec<String> {
        let mut args = vec!["--role".to_string()];
        match role {
            WireRole::Pep => args.push("pep".to_string()),
            WireRole::Pdp { slot } => {
                args.push("pdp".to_string());
                args.extend(["--cloud".to_string(), slot.to_string()]);
            }
            WireRole::Li { index } => {
                args.push("li".to_string());
                args.extend(["--tenant".to_string(), index.to_string()]);
            }
            WireRole::Chain => args.push("chain".to_string()),
            WireRole::Analyser => args.push("analyser".to_string()),
        }
        args
    }
}

impl Provisioner for ProcessProvisioner {
    fn provision(&mut self, role: WireRole) -> Result<SocketAddr, TransportError> {
        if let Some((child, addr)) = self.children.get_mut(&role) {
            // Still alive? (A killed child is re-provisioned fresh.)
            if child.try_wait().map_err(io_error)?.is_none() {
                return Ok(*addr);
            }
            let (mut dead, _) = self.children.remove(&role).expect("present");
            let _ = dead.wait();
        }
        let mut child = Command::new(&self.binary)
            .args(Self::role_args(role))
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(io_error)?;
        // The banner is printed after the bind succeeds, so parsing it
        // both learns the port and synchronises with listener liveness.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .map_err(io_error)?;
        let addr: SocketAddr = banner
            .rsplit(' ')
            .next()
            .map(str::trim)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TransportError::Io(format!("bad drams-node banner: {banner:?}")))?;
        self.children.insert(role, (child, addr));
        Ok(addr)
    }

    fn retire(&mut self, role: WireRole) {
        if let Some((mut child, _)) = self.children.remove(&role) {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn label(&self) -> &'static str {
        "tcp-process"
    }
}

impl Drop for ProcessProvisioner {
    fn drop(&mut self) {
        for (_, (mut child, _)) in self.children.drain() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Wire-level counters the bench runner reports (E16).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Completed round-trips.
    pub frames: u64,
    /// Wire bytes written (outer framing included).
    pub bytes_sent: u64,
    /// Connections established (first contacts and re-establishments).
    pub connects: u64,
    /// Round-trips that had to re-establish a connection mid-flight.
    pub reconnects: u64,
    /// Service restarts signalled via [`Transport::restart`].
    pub restarts: u64,
}

struct Conn {
    stream: TcpStream,
    parser: FrameReader,
}

/// The TCP implementation of the scenario runtime's [`Transport`].
pub struct TcpTransport {
    provisioner: Box<dyn Provisioner>,
    conns: HashMap<WireRole, Conn>,
    stats: NetStats,
}

impl TcpTransport {
    /// The loopback deployment: every role served by an in-process
    /// endpoint thread, provisioned on first contact.
    #[must_use]
    pub fn loopback() -> Self {
        Self::with_provisioner(Box::new(ThreadProvisioner::new()))
    }

    /// A transport over a custom deployment shape.
    #[must_use]
    pub fn with_provisioner(provisioner: Box<dyn Provisioner>) -> Self {
        TcpTransport {
            provisioner,
            conns: HashMap::new(),
            stats: NetStats::default(),
        }
    }

    /// Wire counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn connect(&mut self, role: WireRole) -> Result<(), TransportError> {
        let addr = self.provisioner.provision(role)?;
        let mut last = TransportError::Closed;
        for _ in 0..CONNECT_ATTEMPTS {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream
                        .set_read_timeout(Some(READ_DEADLINE))
                        .map_err(io_error)?;
                    self.conns.insert(
                        role,
                        Conn {
                            stream,
                            parser: FrameReader::new(),
                        },
                    );
                    self.stats.connects += 1;
                    return Ok(());
                }
                Err(e) => last = io_error(e),
            }
            std::thread::sleep(CONNECT_PAUSE);
        }
        Err(last)
    }

    fn try_roundtrip(
        &mut self,
        role: WireRole,
        frame: &WireFrame,
    ) -> Result<WireFrame, TransportError> {
        if !self.conns.contains_key(&role) {
            self.connect(role)?;
        }
        let conn = self.conns.get_mut(&role).expect("connected");
        let n = write_frame(&mut conn.stream, frame)?;
        let echo = read_frame(&mut conn.stream, &mut conn.parser)?;
        self.stats.frames += 1;
        self.stats.bytes_sent += n as u64;
        Ok(echo)
    }
}

impl Transport for TcpTransport {
    fn is_wire(&self) -> bool {
        true
    }

    fn roundtrip(&mut self, frame: WireFrame) -> Result<WireFrame, TransportError> {
        let role = frame.role;
        let mut last = TransportError::Closed;
        for attempt in 0..ROUNDTRIP_ATTEMPTS {
            match self.try_roundtrip(role, &frame) {
                Ok(echo) => {
                    if echo != frame {
                        // The endpoint acked something else: the wire
                        // (or the endpoint) corrupted the frame.
                        return Err(TransportError::Corrupt(format!(
                            "echo mismatch for seq {}",
                            frame.seq
                        )));
                    }
                    return Ok(echo);
                }
                // Structural rejections are not cured by reconnecting.
                Err(
                    e @ (TransportError::Corrupt(_)
                    | TransportError::Oversized { .. }
                    | TransportError::Malformed(_)
                    | TransportError::RoleMismatch { .. }),
                ) => return Err(e),
                Err(e) => {
                    // I/O failure or endpoint death: reconnect and
                    // resend. The endpoint is a validating relay, so a
                    // duplicate send is harmless — only the echo the
                    // driver reads is ever scheduled.
                    self.conns.remove(&role);
                    if attempt + 1 < ROUNDTRIP_ATTEMPTS {
                        self.stats.reconnects += 1;
                    }
                    last = e;
                }
            }
        }
        Err(last)
    }

    fn restart(&mut self, role: WireRole) -> Result<(), TransportError> {
        self.provisioner.retire(role);
        self.conns.remove(&role);
        self.stats.restarts += 1;
        Ok(())
    }

    fn name(&self) -> &'static str {
        self.provisioner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip_reconnects_after_restart() {
        let mut t = TcpTransport::loopback();
        let role = WireRole::Pdp { slot: 1 };
        let frame = WireFrame {
            role,
            kind: 1,
            seq: 1,
            delay: 10,
            payload: vec![9; 32],
        };
        assert_eq!(t.roundtrip(frame.clone()).expect("first"), frame);
        t.restart(role).expect("restart");
        let next = WireFrame { seq: 2, ..frame };
        assert_eq!(t.roundtrip(next.clone()).expect("reconnect"), next);
        let stats = t.stats();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.connects, 2, "restart forces a fresh connection");
    }

    #[test]
    fn distinct_roles_get_distinct_endpoints() {
        let mut t = TcpTransport::loopback();
        for (seq, role) in [
            WireRole::Pep,
            WireRole::Pdp { slot: 0 },
            WireRole::Li { index: 0 },
            WireRole::Chain,
            WireRole::Analyser,
        ]
        .into_iter()
        .enumerate()
        {
            let frame = WireFrame::ping(role, seq as u64 + 1);
            assert_eq!(t.roundtrip(frame.clone()).expect("ping"), frame);
        }
        assert_eq!(t.stats().connects, 5);
    }
}
