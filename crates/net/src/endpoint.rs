//! The service-side socket endpoint: where a Figure-1 service's inbox
//! lives under the TCP transport.
//!
//! An endpoint accepts one client connection at a time (the scenario
//! driver), validates every arriving frame — outer CRC, canonical
//! decode, role pinning, strictly increasing sequence numbers — and
//! acknowledges it by echoing the frame back. The driver schedules the
//! message it decodes from that echo, so everything the simulation
//! consumes has actually crossed the wire twice. Invalid traffic never
//! gets an acknowledgement: the endpoint drops the connection, which
//! the driver observes as a typed error.
//!
//! The same loop serves both deployment shapes: an in-process thread
//! ([`NodeEndpoint::spawn`]) and a standalone process (the `drams-node`
//! binary).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use drams_faas::transport::{TransportError, WireRole};

use crate::frame::{read_frame, write_frame, FrameReader};

/// Counters an endpoint accumulates over its lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EndpointStats {
    /// Frames validated and echoed.
    pub frames: u64,
    /// Wire bytes received (outer framing included).
    pub bytes: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Frames refused (bad role, sequence regression, corrupt bytes).
    pub rejected: u64,
}

/// Serves one accepted connection until EOF, error, or `stop`.
fn serve_connection(
    mut stream: TcpStream,
    pinned: Option<WireRole>,
    stop: &AtomicBool,
    stats: &mut EndpointStats,
) {
    let _ = stream.set_nodelay(true);
    // A short read timeout keeps the loop responsive to `stop` without
    // busy-waiting on an idle connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut parser = FrameReader::new();
    let mut last_seq: Option<u64> = None;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let frame = match read_frame(&mut stream, &mut parser) {
            Ok(frame) => frame,
            Err(TransportError::TimedOut) => continue,
            Err(TransportError::Closed) => return,
            Err(_) => {
                // Corrupt, oversized or malformed bytes: the stream is
                // unrecoverable — drop the connection, never ack.
                stats.rejected += 1;
                return;
            }
        };
        if let Some(expected) = pinned {
            if frame.role != expected {
                stats.rejected += 1;
                return;
            }
        }
        if last_seq.is_some_and(|last| frame.seq <= last) {
            // A replayed or reordered frame: refuse the whole stream.
            stats.rejected += 1;
            return;
        }
        last_seq = Some(frame.seq);
        match write_frame(&mut stream, &frame) {
            Ok(n) => {
                stats.frames += 1;
                stats.bytes += n as u64;
            }
            Err(_) => return,
        }
    }
}

/// Runs the accept loop on `listener` until `stop` is set. Used by both
/// the thread-hosted endpoint and the `drams-node` binary.
pub fn serve(listener: &TcpListener, pinned: Option<WireRole>, stop: &AtomicBool) -> EndpointStats {
    let mut stats = EndpointStats::default();
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.connections += 1;
                // Back to blocking mode for the connection itself.
                let _ = stream.set_nonblocking(false);
                serve_connection(stream, pinned, stop, &mut stats);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    stats
}

/// A thread-hosted service endpoint (the loopback deployment shape).
#[derive(Debug)]
pub struct NodeEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<Mutex<EndpointStats>>,
    handle: Option<JoinHandle<()>>,
}

impl NodeEndpoint {
    /// Binds `127.0.0.1:0` and serves `role` in a fresh thread. The
    /// listener is live before this returns, so a connect attempt never
    /// races the spawn.
    pub fn spawn(role: WireRole) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(EndpointStats::default()));
        let thread_stop = stop.clone();
        let thread_stats = stats.clone();
        let handle = std::thread::Builder::new()
            .name(format!("drams-node-{role}"))
            .spawn(move || {
                let out = serve(&listener, Some(role), &thread_stop);
                *thread_stats.lock().expect("stats lock") = out;
            })?;
        Ok(NodeEndpoint {
            addr,
            stop,
            stats,
            handle: Some(handle),
        })
    }

    /// The endpoint's listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serve loop and returns the endpoint's final counters.
    pub fn shutdown(mut self) -> EndpointStats {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        *self.stats.lock().expect("stats lock")
    }
}

impl Drop for NodeEndpoint {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::io_error;
    use drams_faas::transport::WireFrame;

    fn roundtrip_one(
        stream: &mut TcpStream,
        parser: &mut FrameReader,
        frame: &WireFrame,
    ) -> Result<WireFrame, TransportError> {
        write_frame(stream, frame)?;
        read_frame(stream, parser)
    }

    #[test]
    fn endpoint_echoes_valid_frames() {
        let ep = NodeEndpoint::spawn(WireRole::Chain).expect("spawn");
        let mut stream = TcpStream::connect(ep.addr())
            .map_err(io_error)
            .expect("connect");
        let mut parser = FrameReader::new();
        for seq in 1..=10 {
            let frame = WireFrame::ping(WireRole::Chain, seq);
            let echo = roundtrip_one(&mut stream, &mut parser, &frame).expect("echo");
            assert_eq!(echo, frame);
        }
        drop(stream);
        let stats = ep.shutdown();
        assert_eq!(stats.frames, 10);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn endpoint_refuses_wrong_role_and_sequence_regressions() {
        // Wrong role: the pinned endpoint drops the connection unacked.
        let ep = NodeEndpoint::spawn(WireRole::Analyser).expect("spawn");
        let mut stream = TcpStream::connect(ep.addr()).expect("connect");
        let mut parser = FrameReader::new();
        write_frame(&mut stream, &WireFrame::ping(WireRole::Chain, 1)).expect("write");
        assert!(roundtrip_one(
            &mut stream,
            &mut parser,
            &WireFrame::ping(WireRole::Chain, 2)
        )
        .is_err());
        drop(stream);

        // Sequence regression on a fresh connection.
        let mut stream = TcpStream::connect(ep.addr()).expect("connect");
        let mut parser = FrameReader::new();
        let ok = roundtrip_one(
            &mut stream,
            &mut parser,
            &WireFrame::ping(WireRole::Analyser, 5),
        )
        .expect("first frame");
        assert_eq!(ok.seq, 5);
        write_frame(&mut stream, &WireFrame::ping(WireRole::Analyser, 5)).expect("write");
        assert!(read_frame(&mut stream, &mut parser).is_err());
        drop(stream);
        let stats = ep.shutdown();
        assert_eq!(stats.rejected, 2);
    }
}
