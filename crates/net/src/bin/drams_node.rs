//! `drams-node` — host one Figure-1 service endpoint as its own
//! process.
//!
//! ```text
//! drams-node --role pdp --cloud 2 --listen 127.0.0.1:7702
//! drams-node --role li --tenant 1 --listen 127.0.0.1:0
//! drams-node --role chain --listen 127.0.0.1:7704
//! ```
//!
//! The process binds the listen address, prints
//! `drams-node <role> listening on <addr>` (the port is the bound one,
//! so `:0` works), and serves frames addressed to its role until it is
//! killed. Frames for any other role, corrupt frames and sequence
//! regressions drop the connection without an acknowledgement.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

use drams_faas::transport::WireRole;
use drams_net::endpoint::serve;

fn usage() -> ExitCode {
    eprintln!(
        "usage: drams-node --role <pep|pdp|li|chain|analyser> \
         [--cloud N] [--tenant N] --listen <addr>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut role_name: Option<String> = None;
    let mut param: u32 = 0;
    let mut listen: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return usage();
        };
        match flag.as_str() {
            "--role" => role_name = Some(value.clone()),
            // `--cloud` names the PDP slot, `--tenant` the LI index;
            // both land in the role's instance parameter.
            "--cloud" | "--tenant" => match value.parse() {
                Ok(v) => param = v,
                Err(_) => return usage(),
            },
            "--listen" => listen = Some(value.clone()),
            _ => return usage(),
        }
    }
    let role = match role_name.as_deref() {
        Some("pep") => WireRole::Pep,
        Some("pdp") => WireRole::Pdp { slot: param },
        Some("li") => WireRole::Li { index: param },
        Some("chain") => WireRole::Chain,
        Some("analyser") => WireRole::Analyser,
        _ => return usage(),
    };
    let Some(listen) = listen else {
        return usage();
    };
    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("drams-node: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound address");
    // The banner doubles as the readiness signal: it is printed only
    // after the bind succeeded, and provisioners parse the address off
    // its end.
    println!("drams-node {role} listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    static STOP: AtomicBool = AtomicBool::new(false);
    serve(&listener, Some(role), &STOP);
    ExitCode::SUCCESS
}
