//! drams-net — the real transport for the DRAMS scenario runtime.
//!
//! Figure 1 of the paper deploys the monitoring architecture across a
//! cloud federation: PEPs at every tenant edge, a PDP (with its PRP)
//! per cloud or centrally in the infrastructure tenant, a Logging
//! Interface per tenant, the blockchain node and the Analyser. The
//! scenario runtime (`drams_core::scenario`) normally carries the
//! messages between those services through its in-memory event queue;
//! this crate makes the wire real:
//!
//! * [`frame`] — length-prefixed, CRC-checked byte framing (the WAL
//!   record format around canonical-codec frame bodies) with an
//!   incremental parser that survives arbitrarily torn reads.
//! * [`endpoint`] — the service-side socket endpoint: validates every
//!   frame (CRC, role pinning, sequence continuity) and acknowledges it
//!   by echoing it back; hostable as a thread or as a standalone
//!   process via the `drams-node` binary.
//! * [`transport`] — [`TcpTransport`], the `Transport` backend that
//!   routes every federation-crossing message through the destination
//!   service's endpoint with one synchronous round-trip per message,
//!   reconnecting (and re-resolving) across service crashes.
//!
//! The DES backend stays the conformance oracle: the same
//! `ScenarioSpec` must produce byte-identical alerts and ground truth
//! over `DesTransport` and [`TcpTransport`]
//! (`tests/transport_conformance.rs`, DESIGN.md invariant 9).

#![warn(missing_docs)]

pub mod endpoint;
pub mod frame;
pub mod transport;

pub use endpoint::{serve, EndpointStats, NodeEndpoint};
pub use frame::{frame_bytes, read_frame, write_frame, FrameReader, FRAME_PREFIX};
pub use transport::{NetStats, ProcessProvisioner, Provisioner, TcpTransport, ThreadProvisioner};
