//! Byte-level wire framing: WAL-record framing around canonical-codec
//! frame bodies.
//!
//! The outer layout is exactly `drams_store::segment::frame_record` —
//!
//! ```text
//! len u32 BE | crc32(body) u32 BE | body
//! ```
//!
//! with the IEEE CRC-32 shared with the WAL, and the body is the
//! canonical encoding of [`WireFrame`] (magic, version, role, kind,
//! seq, delay, payload — see `drams_faas::transport`). The reader is an
//! incremental push-parser: bytes arrive in arbitrary splits (partial
//! socket reads), a frame is surfaced only once complete, and every
//! rejection is a typed [`TransportError`] — oversized length prefixes
//! are refused before any allocation, CRC mismatches before any decode.

use std::io::{Read, Write};

use drams_crypto::codec::Decode;
use drams_faas::transport::{TransportError, WireFrame, MAX_FRAME_BODY};
use drams_store::segment::{crc32, frame_record};

/// Bytes of outer framing in front of every body (`len` + `crc`).
pub const FRAME_PREFIX: usize = 8;

/// Encodes a frame into its full wire representation
/// (`len | crc | body`). Fails if the body would exceed
/// [`MAX_FRAME_BODY`].
pub fn frame_bytes(frame: &WireFrame) -> Result<Vec<u8>, TransportError> {
    use drams_crypto::codec::Encode;
    let body = frame.to_canonical_bytes();
    if body.len() > MAX_FRAME_BODY {
        return Err(TransportError::Oversized {
            len: body.len() as u64,
            max: MAX_FRAME_BODY as u64,
        });
    }
    let mut out = Vec::with_capacity(FRAME_PREFIX + body.len());
    frame_record(&body, &mut out);
    Ok(out)
}

/// An incremental frame parser over an arbitrarily-chunked byte stream.
///
/// Feed it whatever the socket produced — single bytes, torn frames,
/// several frames at once — and pull complete frames out. State between
/// calls is just the unconsumed buffer, so a frame torn across any
/// number of reads resumes exactly where it stopped.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    /// A reader with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly-received bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: drop consumed bytes before growing the tail.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Tries to parse the next complete frame.
    ///
    /// `Ok(None)` means the buffer holds only a prefix of a frame (torn
    /// read) — feed more bytes and retry. Errors are permanent for the
    /// stream: an oversized length prefix or a CRC mismatch means the
    /// byte stream is corrupt and resynchronisation is impossible.
    pub fn next_frame(&mut self) -> Result<Option<WireFrame>, TransportError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_PREFIX {
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BODY {
            return Err(TransportError::Oversized {
                len: len as u64,
                max: MAX_FRAME_BODY as u64,
            });
        }
        if avail.len() < FRAME_PREFIX + len {
            return Ok(None);
        }
        let want_crc = u32::from_be_bytes(avail[4..8].try_into().expect("4 bytes"));
        let body = &avail[FRAME_PREFIX..FRAME_PREFIX + len];
        if crc32(body) != want_crc {
            return Err(TransportError::Corrupt(format!(
                "crc mismatch on {len}-byte body"
            )));
        }
        let frame = WireFrame::from_canonical_bytes(body)
            .map_err(|e| TransportError::Malformed(e.to_string()))?;
        self.pos += FRAME_PREFIX + len;
        Ok(Some(frame))
    }
}

/// Writes one frame to `w` and flushes. Returns the wire length.
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> Result<usize, TransportError> {
    let bytes = frame_bytes(frame)?;
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(io_error)?;
    Ok(bytes.len())
}

/// Reads one complete frame from `r`, resuming across however many
/// partial reads the kernel decides to deliver. A clean EOF between
/// frames (or inside one) is [`TransportError::Closed`].
pub fn read_frame(
    r: &mut impl Read,
    parser: &mut FrameReader,
) -> Result<WireFrame, TransportError> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = parser.next_frame()? {
            return Ok(frame);
        }
        let n = r.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(TransportError::Closed);
        }
        parser.feed(&chunk[..n]);
    }
}

/// Maps an `std::io::Error` into the transport's I/O-free error type.
/// Read-deadline expiries (`TimedOut`/`WouldBlock`) become the
/// retryable [`TransportError::TimedOut`].
#[must_use]
pub fn io_error(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => TransportError::TimedOut,
        _ => TransportError::Io(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_faas::transport::WireRole;

    fn sample(seq: u64) -> WireFrame {
        WireFrame {
            role: WireRole::Li { index: 2 },
            kind: 3,
            seq,
            delay: 750,
            payload: vec![0xab; 64],
        }
    }

    #[test]
    fn frame_survives_byte_at_a_time_feeding() {
        let bytes = frame_bytes(&sample(1)).expect("encode");
        let mut parser = FrameReader::new();
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(parser.next_frame().expect("no error"), None, "byte {i}");
            parser.feed(std::slice::from_ref(b));
        }
        assert_eq!(parser.next_frame().expect("complete"), Some(sample(1)));
        assert_eq!(parser.pending(), 0);
    }

    #[test]
    fn two_frames_in_one_feed_come_out_in_order() {
        let mut bytes = frame_bytes(&sample(1)).expect("encode");
        bytes.extend(frame_bytes(&sample(2)).expect("encode"));
        let mut parser = FrameReader::new();
        parser.feed(&bytes);
        assert_eq!(parser.next_frame().expect("first"), Some(sample(1)));
        assert_eq!(parser.next_frame().expect("second"), Some(sample(2)));
        assert_eq!(parser.next_frame().expect("drained"), None);
    }

    #[test]
    fn corrupt_crc_is_a_typed_error() {
        let mut bytes = frame_bytes(&sample(1)).expect("encode");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut parser = FrameReader::new();
        parser.feed(&bytes);
        assert!(matches!(
            parser.next_frame(),
            Err(TransportError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut parser = FrameReader::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0; 4]);
        parser.feed(&bytes);
        assert!(matches!(
            parser.next_frame(),
            Err(TransportError::Oversized { .. })
        ));
    }

    #[test]
    fn oversized_body_is_refused_at_encode_time() {
        let mut frame = sample(1);
        frame.payload = vec![0; MAX_FRAME_BODY + 1];
        assert!(matches!(
            frame_bytes(&frame),
            Err(TransportError::Oversized { .. })
        ));
    }
}
