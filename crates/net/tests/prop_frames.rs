//! Property tests of the wire frame codec, in the corruption-geometry
//! spirit: arbitrary frames must round-trip through arbitrarily torn
//! byte streams, and *every* way of damaging the framing must land on
//! exactly one typed rejection — oversized length prefixes refused
//! before allocation, CRC damage refused before decode, body damage
//! refused by the canonical codec.

use drams_faas::transport::{TransportError, WireFrame, WireRole, MAX_FRAME_BODY};
use drams_net::frame::{frame_bytes, FrameReader, FRAME_PREFIX};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arbitrary frame driven off one seed: every role, random kind,
/// seq, delay and a payload of 0..2048 bytes.
fn rand_frame(rng: &mut StdRng) -> WireFrame {
    let role = match rng.gen_range(0u32..5) {
        0 => WireRole::Pep,
        1 => WireRole::Pdp {
            slot: rng.gen_range(0u32..8),
        },
        2 => WireRole::Li {
            index: rng.gen_range(0u32..8),
        },
        3 => WireRole::Chain,
        _ => WireRole::Analyser,
    };
    let len = rng.gen_range(0usize..2048);
    let mut payload = vec![0u8; len];
    for b in &mut payload {
        *b = rng.gen_range(0u32..256) as u8;
    }
    WireFrame {
        role,
        kind: rng.gen_range(0u32..8) as u8,
        seq: rng.gen_range(0u64..u64::MAX),
        delay: rng.gen_range(0u64..10_000_000),
        payload,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Round-trip: a batch of arbitrary frames, concatenated and then
    /// re-chunked at arbitrary split points (including empty feeds),
    /// comes out of the incremental parser intact and in order.
    #[test]
    fn frames_survive_arbitrary_chunking(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1usize..6);
        let frames: Vec<WireFrame> = (0..count).map(|_| rand_frame(&mut rng)).collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend(frame_bytes(f).expect("encode"));
        }
        let mut parser = FrameReader::new();
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let chunk = rng.gen_range(0usize..97).min(stream.len() - pos);
            parser.feed(&stream[pos..pos + chunk]);
            pos += chunk;
            while let Some(frame) = parser.next_frame().expect("clean stream") {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(parser.pending(), 0);
    }

    /// A frame cut anywhere stays pending (torn read), never errors,
    /// and completes the moment the missing tail arrives.
    #[test]
    fn torn_frames_resume_where_they_stopped(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = rand_frame(&mut rng);
        let bytes = frame_bytes(&frame).expect("encode");
        let cut = rng.gen_range(0usize..bytes.len() as usize);
        let mut parser = FrameReader::new();
        parser.feed(&bytes[..cut]);
        prop_assert_eq!(parser.next_frame().expect("torn prefix is not an error"), None);
        parser.feed(&bytes[cut..]);
        prop_assert_eq!(parser.next_frame().expect("completed"), Some(frame));
    }

    /// Flipping any single bit of the body is caught: by the CRC for
    /// every byte past the prefix, by the oversized/CRC checks inside
    /// it. No damaged frame is ever surfaced as a frame.
    #[test]
    fn any_single_bit_flip_is_rejected(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = rand_frame(&mut rng);
        let mut bytes = frame_bytes(&frame).expect("encode");
        let victim = rng.gen_range(0usize..bytes.len() as usize);
        let bit = rng.gen_range(0u32..8);
        bytes[victim] ^= 1 << bit;
        let mut parser = FrameReader::new();
        parser.feed(&bytes);
        match parser.next_frame() {
            // Damage to the length word usually makes the stream look
            // incomplete (or oversized) — both are acceptable refusals,
            // a surfaced frame equal to the original is not.
            Ok(None) => prop_assert!(victim < 4, "only length damage may stall"),
            Ok(Some(got)) => prop_assert_ne!(got, frame),
            Err(TransportError::Corrupt(_))
            | Err(TransportError::Oversized { .. })
            | Err(TransportError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}

/// The length-prefix ceiling is exact: a prefix of `MAX_FRAME_BODY` is
/// entertained, one byte more is a typed `Oversized` refusal before any
/// body bytes exist.
#[test]
fn oversized_boundary_is_exact() {
    let mut parser = FrameReader::new();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_BODY as u32).to_be_bytes());
    bytes.extend_from_slice(&[0; 4]);
    parser.feed(&bytes);
    assert_eq!(
        parser.next_frame().expect("at the cap: wait for the body"),
        None
    );
    let mut parser = FrameReader::new();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_BODY as u32 + 1).to_be_bytes());
    bytes.extend_from_slice(&[0; 4]);
    parser.feed(&bytes);
    assert!(matches!(
        parser.next_frame(),
        Err(TransportError::Oversized { len, max })
            if len == MAX_FRAME_BODY as u64 + 1 && max == MAX_FRAME_BODY as u64
    ));
}

/// A realistic payload — the canonical-codec `RequestEnvelope` the
/// scenario runtime actually puts on the PEP→PDP wire — rides through
/// the framing unchanged, byte for byte.
#[test]
fn request_envelope_payload_rides_byte_identically() {
    use drams_crypto::codec::{Decode, Encode};
    use drams_faas::model::{PepId, TenantId};
    use drams_faas::msg::{CorrelationId, RequestEnvelope};
    use drams_policy::attr::Request;

    let env = RequestEnvelope {
        correlation: CorrelationId(77),
        tenant: TenantId(2),
        pep: PepId(2),
        service: "records".to_string(),
        request: Request::new(),
        issued_at: 1_250,
    };
    let payload = env.to_canonical_bytes();
    let frame = WireFrame {
        role: WireRole::Pdp { slot: 0 },
        kind: 1,
        seq: 1,
        delay: 250,
        payload: payload.clone(),
    };
    let bytes = frame_bytes(&frame).expect("encode");
    assert_eq!(bytes.len(), FRAME_PREFIX + frame.to_canonical_bytes().len());
    let mut parser = FrameReader::new();
    parser.feed(&bytes);
    let got = parser.next_frame().expect("clean").expect("complete");
    assert_eq!(got.payload, payload);
    let back = RequestEnvelope::from_canonical_bytes(&got.payload).expect("decode");
    assert_eq!(back, env);
}
