//! Process-mode conformance: Figure 1 with every contacted service
//! endpoint hosted in its own real `drams-node` process.
//!
//! The scenario driver spawns one child process per role on first
//! contact ([`ProcessProvisioner`]), and a scripted `CrashRestart`
//! reaches the transport as a real `SIGKILL`: the child dies, the next
//! frame for that role spawns a fresh process (at a *different* port —
//! `--listen 127.0.0.1:0`) and reconnects. The run must still converge
//! to the same alert stream and ground truth as its DES twin.

use drams_core::adversary::NoAdversary;
use drams_core::monitor::{MonitorConfig, MonitorReport};
use drams_core::scenario::{
    run_scenario, run_scenario_with_transport, CrashTarget, ScenarioSpec, ScriptedAction,
};
use drams_crypto::codec::Encode;
use drams_faas::des::MILLIS;
use drams_faas::model::TenantId;
use drams_net::{ProcessProvisioner, TcpTransport};

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_drams-node")
}

fn alert_bytes(report: &MonitorReport) -> Vec<Vec<u8>> {
    report
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect()
}

fn small_config() -> MonitorConfig {
    MonitorConfig {
        total_requests: 40,
        request_rate_per_sec: 150.0,
        ..MonitorConfig::default()
    }
}

/// An honest run over real per-service processes is byte-identical to
/// the DES oracle.
#[test]
fn process_hosted_run_matches_des_twin() {
    let spec = ScenarioSpec {
        name: "process_hosted".to_string(),
        ..ScenarioSpec::canonical(&small_config())
    };
    let (des, des_truth) = run_scenario(&spec, &mut NoAdversary);
    let mut transport =
        TcpTransport::with_provisioner(Box::new(ProcessProvisioner::new(node_binary())));
    let (tcp, tcp_truth) = run_scenario_with_transport(&spec, &mut NoAdversary, &mut transport);
    let stats = transport.stats();
    assert!(
        stats.frames > 0,
        "frames must cross real process boundaries"
    );
    assert_eq!(des_truth, tcp_truth);
    assert_eq!(alert_bytes(&des), alert_bytes(&tcp));
    assert_eq!(des.requests_completed, tcp.requests_completed);
    assert_eq!(des.entries_logged, tcp.entries_logged);
    assert_eq!(des.groups_completed, tcp.groups_completed);
    assert_eq!(des.txs_committed, tcp.txs_committed);
    assert_eq!(des.finished_at, tcp.finished_at);
}

/// The crash/reconnect bar: a journaled service process (tenant 1's
/// Logging Interface) is killed and restarted mid-scenario via the
/// `CrashTarget` machinery, and the TCP run converges to the same alert
/// stream as its DES twin.
#[test]
fn killed_and_respawned_li_process_converges_to_des_twin() {
    let crash = ScenarioSpec {
        name: "process_crash_li".to_string(),
        script: vec![ScriptedAction::CrashRestart {
            at: 400 * MILLIS,
            target: CrashTarget::Li(TenantId(1)),
        }],
        ..ScenarioSpec::canonical(&small_config())
    };
    let (des, des_truth) = run_scenario(&crash, &mut NoAdversary);
    assert_eq!(des.crash_restarts, 1);
    let mut transport =
        TcpTransport::with_provisioner(Box::new(ProcessProvisioner::new(node_binary())));
    let (tcp, tcp_truth) = run_scenario_with_transport(&crash, &mut NoAdversary, &mut transport);
    let stats = transport.stats();
    assert_eq!(tcp.crash_restarts, 1);
    assert_eq!(stats.restarts, 1, "the LI process must really have died");
    assert!(
        stats.connects >= 2,
        "the transport must reconnect to the respawned process"
    );
    assert_eq!(des_truth, tcp_truth);
    assert_eq!(alert_bytes(&des), alert_bytes(&tcp));
    assert_eq!(des.entries_logged, tcp.entries_logged);
    assert_eq!(des.groups_completed, tcp.groups_completed);
    assert_eq!(des.finished_at, tcp.finished_at);
}
