//! Cryptographic substrate for the DRAMS reproduction.
//!
//! This crate implements, from scratch, every cryptographic primitive the
//! DRAMS architecture (Ferdous et al., ICDCS 2017) depends on:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, the hash used for block identifiers,
//!   transaction ids, Merkle trees and log-entry digests.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), used for log authentication tags
//!   and as the MAC half of the authenticated encryption scheme.
//! * [`chacha20`] — the RFC 8439 ChaCha20 stream cipher, used by the
//!   Logging Interface to encrypt log payloads under the federation-wide
//!   symmetric key *K* (paper §II: "the LI also provides symmetric
//!   encryption and decryption functions").
//! * [`aead`] — encrypt-then-MAC authenticated encryption combining
//!   ChaCha20 and HMAC-SHA-256.
//! * [`merkle`] — binary Merkle trees with inclusion proofs, used for block
//!   transaction roots and for the hybrid database anchoring of ref \[9\].
//! * [`bignum`] — 256/512-bit unsigned integer arithmetic (Knuth
//!   Algorithm D division, modular exponentiation), the auditable
//!   reference backend for signatures.
//! * [`montgomery`] — the fast arithmetic core: division-free Montgomery
//!   REDC multiplication, fixed-window exponentiation and precomputed
//!   fixed-base tables, property-tested equivalent to [`bignum`].
//! * [`schnorr`] — Schnorr signatures over the quadratic-residue subgroup
//!   of a fixed 256-bit safe prime, used to sign blockchain transactions;
//!   includes [`schnorr::batch_verify`] for amortised block validation.
//! * [`codec`] — a canonical, deterministic binary encoding. Hashing and
//!   signing require byte-for-byte reproducible encodings, which generic
//!   serialisation frameworks do not guarantee; every on-chain datum in
//!   this workspace is encoded through this codec before being hashed.
//!
//! # Example
//!
//! ```
//! use drams_crypto::{sha256::Digest, aead::{SymmetricKey, seal, open}};
//!
//! # fn main() -> Result<(), drams_crypto::CryptoError> {
//! let key = SymmetricKey::from_bytes([7u8; 32]);
//! let sealed = seal(&key, [0u8; 12], b"log-entry-aad", b"access granted");
//! let plain = open(&key, b"log-entry-aad", &sealed)?;
//! assert_eq!(plain, b"access granted");
//! let digest = Digest::of(&plain);
//! assert_eq!(digest, Digest::of(b"access granted"));
//! # Ok(())
//! # }
//! ```

pub mod aead;
pub mod bignum;
pub mod chacha20;
pub mod codec;
pub mod hmac;
pub mod merkle;
pub mod montgomery;
pub mod schnorr;
pub mod sha256;

pub use aead::{open, seal, SealedBox, SymmetricKey};
pub use codec::{Decode, Encode, Reader, Writer};
pub use merkle::{MerkleProof, MerkleTree};
pub use montgomery::{FixedBaseTable, MontCtx};
pub use schnorr::{batch_verify, BatchVerifyError, Keypair, PublicKey, SecretKey, Signature};
pub use sha256::Digest;

use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An authentication tag did not match the ciphertext.
    InvalidTag,
    /// A signature failed verification.
    InvalidSignature,
    /// An encoded value was malformed or truncated.
    Malformed(String),
    /// A scalar or group element was outside its valid range.
    OutOfRange(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidTag => write!(f, "authentication tag mismatch"),
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::Malformed(what) => write!(f, "malformed encoding: {what}"),
            CryptoError::OutOfRange(what) => write!(f, "value out of range: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Constant-time byte-slice equality.
///
/// Used when comparing MACs so that the comparison time does not leak the
/// position of the first mismatching byte.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_matches_on_equal() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_rejects_different_lengths_and_content() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b""));
    }

    #[test]
    fn error_display_is_lowercase_and_nonempty() {
        for e in [
            CryptoError::InvalidTag,
            CryptoError::InvalidSignature,
            CryptoError::Malformed("x".into()),
            CryptoError::OutOfRange("y"),
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
