//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used for log authentication tags (per-probe keys held in the simulated
//! TPM), as the MAC half of [`crate::aead`], and as the deterministic-nonce
//! derivation function for [`crate::schnorr`] signing.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are hashed first, exactly as RFC
/// 2104 prescribes.
///
/// # Example
///
/// ```
/// use drams_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     tag.to_hex(),
///     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
/// );
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(Digest::of(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Computes HMAC over the concatenation of several message parts.
#[must_use]
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> Digest {
    let mut message = Vec::new();
    for p in parts {
        message.extend_from_slice(p);
    }
    hmac_sha256(key, &message)
}

/// Derives a subkey from a master key and a domain-separation label.
///
/// This is the workspace's lightweight KDF: `HKDF`-like in spirit but a
/// single HMAC invocation, which suffices because inputs are already
/// uniformly random 32-byte keys.
#[must_use]
pub fn derive_key(master: &[u8], label: &str) -> [u8; 32] {
    *hmac_sha256(master, label.as_bytes()).as_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = hmac_sha256(&key, data);
        assert_eq!(
            tag.to_hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn parts_equals_concat() {
        assert_eq!(
            hmac_sha256_parts(b"k", &[b"ab", b"cd"]),
            hmac_sha256(b"k", b"abcd")
        );
    }

    #[test]
    fn derive_key_separates_domains() {
        let master = [42u8; 32];
        assert_ne!(derive_key(&master, "enc"), derive_key(&master, "mac"));
        assert_eq!(derive_key(&master, "enc"), derive_key(&master, "enc"));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
