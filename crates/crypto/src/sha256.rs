//! FIPS 180-4 SHA-256.
//!
//! This is the single hash function used throughout the workspace: block
//! hashes, transaction ids, Merkle nodes, log-entry digests and the
//! proof-of-work puzzle all reduce to SHA-256 over canonical encodings.

use serde::{Deserialize, Serialize};
use std::fmt;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use drams_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    ///
    /// Aligned 64-byte blocks are compressed directly from the input
    /// slice; the internal buffer only stages partial blocks.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                compress(&mut self.state, &self.buffer);
                self.buffered = 0;
            }
        }
        let mut chunks = input.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.state, block.try_into().expect("64-byte chunk"));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the bit length. Built
        // in place rather than routed through `update`.
        self.buffer[self.buffered] = 0x80;
        for b in &mut self.buffer[self.buffered + 1..] {
            *b = 0;
        }
        if self.buffered >= 56 {
            compress(&mut self.state, &self.buffer);
            self.buffer = [0u8; 64];
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut self.state, &self.buffer);
        digest_of_state(&self.state)
    }

    /// One-shot digest: compresses aligned 64-byte blocks directly from
    /// `data` without staging through the internal buffer, then pads the
    /// tail on the stack. Equivalent to `new` + `update` + `finalize`,
    /// measurably cheaper for the workspace's hashing-heavy paths
    /// (transaction/block ids, Merkle nodes, log digests).
    #[must_use]
    pub fn digest(data: &[u8]) -> Digest {
        let mut state = H0;
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut state, block.try_into().expect("64-byte chunk"));
        }
        let rest = chunks.remainder();
        let mut tail = [0u8; 128];
        tail[..rest.len()].copy_from_slice(rest);
        tail[rest.len()] = 0x80;
        let blocks = if rest.len() >= 56 { 2 } else { 1 };
        let bit_len = (data.len() as u64).wrapping_mul(8);
        tail[blocks * 64 - 8..blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut state, tail[..64].try_into().expect("first tail block"));
        if blocks == 2 {
            compress(
                &mut state,
                tail[64..].try_into().expect("second tail block"),
            );
        }
        digest_of_state(&state)
    }
}

fn digest_of_state(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// A 32-byte SHA-256 digest.
///
/// `Digest` is the universal identifier type in the workspace: transaction
/// ids, block hashes and log-entry digests are all `Digest`s.
///
/// # Example
///
/// ```
/// use drams_crypto::sha256::Digest;
///
/// let d = Digest::of(b"abc");
/// assert!(d.to_hex().starts_with("ba7816bf"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as a sentinel (e.g. the genesis parent).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes `data` in one shot (the buffer-free [`Sha256::digest`]
    /// fast path).
    #[must_use]
    pub fn of(data: &[u8]) -> Digest {
        Sha256::digest(data)
    }

    /// Hashes the concatenation of several byte slices.
    #[must_use]
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Returns the raw digest bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns the digest as a lowercase hex string.
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::Malformed`] if the string is not
    /// exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Result<Digest, crate::CryptoError> {
        let s = s.trim();
        if s.len() != 64 {
            return Err(crate::CryptoError::Malformed(format!(
                "digest hex must be 64 chars, got {}",
                s.len()
            )));
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|e| crate::CryptoError::Malformed(format!("bad hex: {e}")))?;
        }
        Ok(Digest(out))
    }

    /// Counts the number of leading zero *bits*, used by proof-of-work.
    #[must_use]
    pub fn leading_zero_bits(&self) -> u32 {
        let mut n = 0;
        for b in self.0 {
            if b == 0 {
                n += 8;
            } else {
                n += b.leading_zeros();
                break;
            }
        }
        n
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::ZERO
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_empty_vector() {
        assert_eq!(
            Digest::of(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc_vector() {
        assert_eq!(
            Digest::of(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_vector() {
        assert_eq!(
            Digest::of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            Digest::of(b"The quick brown fox jumps over the lazy dog").to_hex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..255u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 128, 200, 255] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Digest::of(&data), "split at {split}");
        }
    }

    #[test]
    fn of_parts_equals_concat() {
        assert_eq!(Digest::of_parts(&[b"ab", b"", b"c"]), Digest::of(b"abc"));
    }

    #[test]
    fn hex_round_trip() {
        let d = Digest::of(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("abc").is_err());
        assert!(Digest::from_hex(&"zz".repeat(32)).is_err());
    }

    #[test]
    fn leading_zero_bits_counts() {
        assert_eq!(Digest::ZERO.leading_zero_bits(), 256);
        let mut one = [0u8; 32];
        one[0] = 0x01;
        assert_eq!(Digest(one).leading_zero_bits(), 7);
        let mut b = [0u8; 32];
        b[1] = 0x80;
        assert_eq!(Digest(b).leading_zero_bits(), 8);
    }

    #[test]
    fn oneshot_equals_incremental_at_padding_boundaries() {
        // The one-shot digest has its own padding logic; pin it to the
        // incremental hasher across every block/padding boundary.
        for len in [
            0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 121, 127, 128, 129, 255, 256,
        ] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(Sha256::digest(&data), h.finalize(), "len {len}");
        }
    }

    #[test]
    fn padding_edge_lengths() {
        // Lengths straddling the 55/56/64-byte padding boundaries must all
        // produce distinct, stable digests (regression guard for the manual
        // padding logic in `finalize`).
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let d = Digest::of(&data);
            assert!(seen.insert(d), "collision at len {len}");
            // and incremental agrees
            let mut h = Sha256::new();
            for b in &data {
                h.update(&[*b]);
            }
            assert_eq!(h.finalize(), d);
        }
    }
}
