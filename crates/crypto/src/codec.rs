//! Canonical binary encoding.
//!
//! Everything that is hashed, signed or stored on-chain in this workspace is
//! first serialised through this codec. The encoding is *canonical*: a value
//! has exactly one encoding, so `hash(encode(v))` is well-defined. This is a
//! property generic serialisation frameworks do not promise, which is why
//! the workspace does not hash serde output.
//!
//! Format summary (all integers big-endian; lengths as LEB128 varints):
//!
//! * `u8/u16/u32/u64` — fixed-width big-endian
//! * `varint` — unsigned LEB128
//! * `bytes` — varint length prefix + raw bytes
//! * `str` — UTF-8 `bytes`
//! * `seq` — varint count followed by each element

use crate::CryptoError;

/// Canonical encoder.
///
/// # Example
///
/// ```
/// use drams_crypto::codec::{Writer, Reader};
///
/// # fn main() -> Result<(), drams_crypto::CryptoError> {
/// let mut w = Writer::new();
/// w.put_u32(7);
/// w.put_str("pep-1");
/// let bytes = w.into_bytes();
///
/// let mut r = Reader::new(&bytes);
/// assert_eq!(r.get_u32()?, 7);
/// assert_eq!(r.get_str()?, "pep-1");
/// r.finish()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `i64` using zig-zag-free two's-complement big-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    ///
    /// Canonicality caveat: NaN payloads are preserved verbatim; the
    /// workspace never hashes NaNs.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with **no** length prefix (fixed-width fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Canonical decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn need(&self, n: usize) -> Result<(), CryptoError> {
        if self.buf.len() < n {
            Err(CryptoError::Malformed(format!(
                "need {n} bytes, have {}",
                self.buf.len()
            )))
        } else {
            Ok(())
        }
    }

    fn advance(&mut self, n: usize) {
        self.buf = &self.buf[n..];
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on truncation (likewise for all
    /// other `get_*` methods).
    pub fn get_u8(&mut self) -> Result<u8, CryptoError> {
        self.need(1)?;
        let v = self.buf[0];
        self.advance(1);
        Ok(v)
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CryptoError> {
        Ok(u16::from_be_bytes(self.get_array::<2>()?))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CryptoError> {
        Ok(u32::from_be_bytes(self.get_array::<4>()?))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CryptoError> {
        Ok(u64::from_be_bytes(self.get_array::<8>()?))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CryptoError> {
        Ok(i64::from_be_bytes(self.get_array::<8>()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CryptoError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a boolean; any byte other than 0/1 is rejected (canonicality).
    pub fn get_bool(&mut self) -> Result<bool, CryptoError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CryptoError::Malformed(format!("bool byte {other}"))),
        }
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// Rejects non-minimal encodings and values wider than 64 bits.
    pub fn get_varint(&mut self) -> Result<u64, CryptoError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CryptoError::Malformed("varint overflow".into()));
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                if byte == 0 && shift != 0 {
                    return Err(CryptoError::Malformed("non-minimal varint".into()));
                }
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(CryptoError::Malformed("varint too long".into()));
            }
        }
    }

    /// Reads length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CryptoError> {
        let len = self.get_varint()? as usize;
        self.get_raw(len)
    }

    /// Reads `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> Result<Vec<u8>, CryptoError> {
        self.need(n)?;
        let out = self.buf[..n].to_vec();
        self.advance(n);
        Ok(out)
    }

    /// Reads a fixed-size array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], CryptoError> {
        self.need(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[..N]);
        self.advance(N);
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CryptoError> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|e| CryptoError::Malformed(format!("invalid utf-8: {e}")))
    }

    /// Remaining unread byte count.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Asserts that the input was fully consumed (canonicality: no
    /// trailing garbage).
    pub fn finish(self) -> Result<(), CryptoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CryptoError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len()
            )))
        }
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends this value's canonical encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh buffer.
    fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: SHA-256 of the canonical encoding.
    fn canonical_digest(&self) -> crate::sha256::Digest {
        crate::sha256::Digest::of(&self.to_canonical_bytes())
    }
}

/// Types decodable from the canonical encoding.
pub trait Decode: Sized {
    /// Decodes one value, consuming exactly its encoding from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on truncated or invalid input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError>;

    /// Decodes a value that must occupy the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] on trailing bytes or bad input.
    fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Encode for crate::sha256::Digest {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self.as_bytes());
    }
}

impl Decode for crate::sha256::Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(crate::sha256::Digest(r.get_array::<32>()?))
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        r.get_bytes()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        r.get_str()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        r.get_u64()
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.as_slice().encode(w);
    }
}

/// Decodes a length-prefixed sequence of `T`.
///
/// # Errors
///
/// Propagates element decode errors and rejects absurd lengths.
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, CryptoError> {
    let n = r.get_varint()? as usize;
    // A sane upper bound: each element needs at least one byte.
    if n > r.remaining() {
        return Err(CryptoError::Malformed(format!(
            "sequence claims {n} elements but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Digest;

    #[test]
    fn primitive_round_trips() {
        let mut w = Writer::new();
        w.put_u8(0xab);
        w.put_u16(0xcdef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(2.5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0xcdef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), 2.5);
        r.finish().unwrap();
    }

    #[test]
    fn varint_round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_rejects_non_minimal() {
        // 0x80 0x00 is a non-minimal encoding of 0.
        let mut r = Reader::new(&[0x80, 0x00]);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn varint_rejects_overflow() {
        let bytes = [0xffu8; 10];
        let mut r = Reader::new(&bytes);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn bytes_and_str_round_trip() {
        let mut w = Writer::new();
        w.put_bytes(b"hello");
        w.put_str("wörld");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let mut w = Writer::new();
        w.put_str("hello world");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_str().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected_by_finish() {
        let mut r = Reader::new(&[1, 2, 3]);
        let _ = r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn bool_rejects_non_canonical() {
        let mut r = Reader::new(&[2]);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn digest_round_trip_via_traits() {
        let d = Digest::of(b"x");
        let bytes = d.to_canonical_bytes();
        assert_eq!(bytes.len(), 32);
        assert_eq!(Digest::from_canonical_bytes(&bytes).unwrap(), d);
    }

    #[test]
    fn seq_round_trip() {
        let v: Vec<String> = vec!["a".into(), "bb".into(), "".into()];
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back: Vec<String> = decode_seq(&mut r).unwrap();
        assert_eq!(back, v);
        r.finish().unwrap();
    }

    #[test]
    fn seq_rejects_absurd_length_claim() {
        let mut w = Writer::new();
        w.put_varint(1_000_000);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(decode_seq::<String>(&mut r).is_err());
    }

    #[test]
    fn canonical_digest_is_stable() {
        let v: Vec<u8> = b"payload".to_vec();
        assert_eq!(v.canonical_digest(), v.canonical_digest());
    }
}
