//! Montgomery-form modular arithmetic for odd 256-bit moduli.
//!
//! [`crate::bignum`]'s `mul_mod` runs a full Knuth Algorithm D division
//! per product, which makes a 256-bit `mod_pow` cost ~384 divisions.
//! This module replaces that in hot paths with Montgomery REDC
//! ([`MontCtx::mont_mul`]: a 4×4 schoolbook product interleaved with the
//! reduction — no division at all), fixed-window (w = 4) exponentiation
//! for arbitrary bases, and a precomputed fixed-base table
//! ([`FixedBaseTable`]) that turns exponentiations of a *fixed* generator
//! into 64 table multiplications with zero squarings.
//!
//! The Algorithm D path in `bignum` is retained untouched as the
//! auditable reference; `tests/prop_montgomery.rs` cross-checks the two
//! over random operands and the real Schnorr group moduli. All values
//! enter and leave in ordinary (non-Montgomery) representation unless a
//! function name says `_mont`.

use crate::bignum::{U256, U512};

/// Exponentiation window width in bits. 16-entry tables; a 256-bit
/// exponent is 64 windows.
const WINDOW_BITS: usize = 4;
/// Number of 4-bit windows in a 256-bit exponent.
const WINDOWS: usize = 256 / WINDOW_BITS;

/// Precomputed Montgomery context for one odd modulus `m`.
///
/// Holds `R² mod m` (for conversion into Montgomery form, `R = 2^256`),
/// `R mod m` (the Montgomery form of 1) and `-m⁻¹ mod 2^64` (the REDC
/// constant). Construction costs two Algorithm D reductions and a short
/// Newton iteration; every subsequent `mont_mul` is division-free.
#[derive(Debug, Clone)]
pub struct MontCtx {
    m: U256,
    /// `-m⁻¹ mod 2^64`.
    n0: u64,
    /// `R² mod m`.
    r2: U256,
    /// `R mod m` — the Montgomery representation of 1.
    one: U256,
}

impl MontCtx {
    /// Builds a context for an odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even (REDC requires `gcd(m, 2^64) = 1`).
    #[must_use]
    pub fn new(m: U256) -> Self {
        assert!(!m.is_even(), "Montgomery modulus must be odd");
        // Newton–Hensel iteration for m0^-1 mod 2^64: each step doubles
        // the number of correct low bits; 6 steps exceed 64 bits.
        let m0 = m.0[0];
        let mut inv = m0; // correct to 3 bits (m0 odd)
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();
        // R mod m and R² mod m via the reference division (setup only).
        let r_mod_m = U512([0, 0, 0, 0, 1, 0, 0, 0]).rem(&m);
        let r2 = r_mod_m.full_mul(r_mod_m).rem(&m);
        MontCtx {
            m,
            n0,
            r2,
            one: r_mod_m,
        }
    }

    /// The modulus this context reduces by.
    #[must_use]
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// The Montgomery representation of 1 (`R mod m`).
    #[must_use]
    pub fn one_mont(&self) -> U256 {
        self.one
    }

    /// Montgomery product `a·b·R⁻¹ mod m` (CIOS: coarsely integrated
    /// operand scanning, Koç et al.). Correct for `a < 2^256`, `b < m`;
    /// the result is fully reduced (`< m`).
    #[must_use]
    pub fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        let m = &self.m.0;
        // t holds the running (s+2)-limb accumulator.
        let mut t = [0u64; 6];
        for i in 0..4 {
            // t += a[i] * b
            let ai = u128::from(a.0[i]);
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc = u128::from(t[j]) + ai * u128::from(b.0[j]) + carry;
                t[j] = acc as u64;
                carry = acc >> 64;
            }
            let acc = u128::from(t[4]) + carry;
            t[4] = acc as u64;
            t[5] = t[5].wrapping_add((acc >> 64) as u64);

            // u = t[0] · n0 mod 2^64; t += u·m; t >>= 64
            let u = u128::from(t[0].wrapping_mul(self.n0));
            let acc = u128::from(t[0]) + u * u128::from(m[0]);
            let mut carry = acc >> 64; // low limb is now zero by choice of u
            for j in 1..4 {
                let acc = u128::from(t[j]) + u * u128::from(m[j]) + carry;
                t[j - 1] = acc as u64;
                carry = acc >> 64;
            }
            let acc = u128::from(t[4]) + carry;
            t[3] = acc as u64;
            let acc = u128::from(t[5]) + (acc >> 64);
            t[4] = acc as u64;
            t[5] = (acc >> 64) as u64;
        }
        let lo = U256([t[0], t[1], t[2], t[3]]);
        // The CIOS invariant gives t < 2m, so one conditional subtract
        // fully reduces.
        if t[4] != 0 || lo >= self.m {
            lo.wrapping_sub(self.m)
        } else {
            lo
        }
    }

    /// Converts into Montgomery form: `a·R mod m`. Accepts any `a`
    /// (including `a ≥ m`); the REDC doubles as the reduction.
    #[must_use]
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &self.r2)
    }

    /// Converts out of Montgomery form: `ā·R⁻¹ mod m`.
    #[must_use]
    pub fn from_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &U256::ONE)
    }

    /// `a mod m` without a division (two Montgomery products).
    #[must_use]
    pub fn reduce(&self, a: &U256) -> U256 {
        let am = self.to_mont(a);
        self.from_mont(&am)
    }

    /// `(a · b) mod m` through Montgomery form (two `mont_mul`s, no
    /// division). Accepts unreduced `a`; `b` may also be unreduced
    /// because `to_mont` reduces it first. The factors of `R` cancel:
    /// `a · (b·R) · R⁻¹ = a·b mod m`.
    #[must_use]
    pub fn mul_mod(&self, a: &U256, b: &U256) -> U256 {
        let bm = self.to_mont(b);
        self.mont_mul(a, &bm)
    }

    /// Builds the 16-entry window table `[1, b, b², …, b¹⁵]` for a base
    /// already in Montgomery form. Public so batch verifiers can share
    /// one table across many exponentiations of the same base (see
    /// [`MontCtx::pow_mont_with_table`]).
    #[must_use]
    pub fn window_table_of(&self, base_mont: &U256) -> [U256; 16] {
        self.window_table(base_mont)
    }

    fn window_table(&self, base_mont: &U256) -> [U256; 16] {
        let mut table = [self.one; 16];
        table[1] = *base_mont;
        for j in 2..16 {
            table[j] = self.mont_mul(&table[j - 1], base_mont);
        }
        table
    }

    /// Fixed-window (w = 4) exponentiation, all in Montgomery form:
    /// `base^exp · R^(1-exp)`… — callers pass and receive Montgomery
    /// representations, so the result is simply `mont(x^exp)` when
    /// `base_mont = mont(x)`.
    #[must_use]
    pub fn pow_mont(&self, base_mont: &U256, exp: &U256) -> U256 {
        let table = self.window_table(base_mont);
        self.pow_mont_with_table(&table, exp)
    }

    /// As [`MontCtx::pow_mont`] but with a caller-provided window table,
    /// so a batch sharing one base amortises the table build.
    #[must_use]
    pub fn pow_mont_with_table(&self, table: &[U256; 16], exp: &U256) -> U256 {
        let nbits = exp.bits();
        if nbits == 0 {
            return self.one;
        }
        let top_window = (nbits - 1) / WINDOW_BITS;
        let mut acc = table[window_of(exp, top_window)];
        for w in (0..top_window).rev() {
            for _ in 0..WINDOW_BITS {
                acc = self.mont_mul(&acc, &acc);
            }
            let digit = window_of(exp, w);
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
            }
        }
        acc
    }

    /// `base^exp mod m` on ordinary representations (fixed-window w = 4).
    ///
    /// Matches [`U256::mod_pow`] for every odd modulus, including the
    /// `m = 1` edge (where everything reduces to 0).
    #[must_use]
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let base_mont = self.to_mont(base);
        let out = self.pow_mont(&base_mont, exp);
        self.from_mont(&out)
    }
}

/// Extracts 4-bit window `w` (little-endian window order) of `exp`.
#[inline]
fn window_of(exp: &U256, w: usize) -> usize {
    let bit = w * WINDOW_BITS;
    ((exp.0[bit / 64] >> (bit % 64)) & 0xf) as usize
}

/// `base^exp mod m` choosing the fastest applicable backend: Montgomery
/// fixed-window for odd moduli, the Algorithm D reference otherwise.
///
/// # Panics
///
/// Panics if `m` is zero (as [`U256::mod_pow`]).
#[must_use]
pub fn mod_pow(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "modulus must be non-zero");
    if m.is_even() {
        return base.mod_pow(exp, m);
    }
    MontCtx::new(*m).pow(base, exp)
}

/// Precomputed fixed-base exponentiation table: `table[i][j]` holds
/// `base^(j·16^i)` in Montgomery form, for `i ∈ [0, 64)`, `j ∈ [0, 16)`.
///
/// An exponentiation of the fixed base is then the product of one table
/// entry per 4-bit window of the exponent — at most 63 `mont_mul`s and
/// **no squarings**. Signing's `g^k` and verification's `g^s` become
/// table walks (~6× fewer multiplications than a windowed ladder).
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    table: Vec<[U256; 16]>,
}

impl FixedBaseTable {
    /// Precomputes the table (960 `mont_mul`s, done once per base).
    #[must_use]
    pub fn new(ctx: &MontCtx, base: &U256) -> Self {
        let mut table = Vec::with_capacity(WINDOWS);
        let mut cur = ctx.to_mont(base); // base^(16^i), advancing per row
        for _ in 0..WINDOWS {
            let row = ctx.window_table(&cur);
            cur = ctx.mont_mul(&row[15], &cur);
            table.push(row);
        }
        FixedBaseTable { table }
    }

    /// `base^exp` in Montgomery form.
    #[must_use]
    pub fn pow_mont(&self, ctx: &MontCtx, exp: &U256) -> U256 {
        let mut acc = ctx.one;
        for (i, row) in self.table.iter().enumerate() {
            let digit = window_of(exp, i);
            if digit != 0 {
                acc = ctx.mont_mul(&acc, &row[digit]);
            }
        }
        acc
    }

    /// `base^exp mod m` in ordinary representation.
    #[must_use]
    pub fn pow(&self, ctx: &MontCtx, exp: &U256) -> U256 {
        let out = self.pow_mont(ctx, exp);
        ctx.from_mont(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> U256 {
        U256::from_hex("8232159ce3aaabcb7e79630eda13a97087fda834f152bdac26761be39f039a2b")
    }

    #[test]
    fn redc_constant_is_inverse() {
        let ctx = MontCtx::new(p());
        assert_eq!(ctx.n0.wrapping_mul(p().0[0]), u64::MAX); // -1 mod 2^64
    }

    #[test]
    fn round_trip_through_mont_form() {
        let ctx = MontCtx::new(p());
        for v in [0u64, 1, 2, 0xdead_beef] {
            let x = U256::from_u64(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mont_mul_matches_mul_mod() {
        let ctx = MontCtx::new(p());
        let a = U256::from_hex("1e2feb89414c343c1027c4d1c386bbc4cd613e30d8f16adf91b7584a2265b1f5");
        let b = U256::from_hex("35bf992dc9e9c616612e7696a6cecc1b78e510617311d8a3c2ce6f447ed4d57b");
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(got, a.mul_mod(b, &p()));
        assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(b, &p()));
    }

    #[test]
    fn pow_matches_reference_vectors() {
        let ctx = MontCtx::new(p());
        let a = U256::from_hex("1e2feb89414c343c1027c4d1c386bbc4cd613e30d8f16adf91b7584a2265b1f5");
        let b = U256::from_hex("35bf992dc9e9c616612e7696a6cecc1b78e510617311d8a3c2ce6f447ed4d57b");
        let expected =
            U256::from_hex("430cf7ed87b2c96201a971d0467e2fc1a7a7484f5febacea11770107c72273fd");
        assert_eq!(ctx.pow(&a, &b), expected);
        assert_eq!(mod_pow(&a, &b, &p()), expected);
    }

    #[test]
    fn pow_edge_cases_match_reference() {
        let m = p();
        let ctx = MontCtx::new(m);
        assert_eq!(ctx.pow(&U256::from_u64(2), &U256::ZERO), U256::ONE);
        assert_eq!(ctx.pow(&U256::from_u64(2), &U256::ONE), U256::from_u64(2));
        assert_eq!(ctx.pow(&U256::ZERO, &U256::from_u64(5)), U256::ZERO);
        // m = 1: everything is 0, as in the reference.
        let one_ctx = MontCtx::new(U256::ONE);
        assert_eq!(
            one_ctx.pow(&U256::from_u64(7), &U256::ONE),
            U256::from_u64(7).mod_pow(&U256::ONE, &U256::ONE)
        );
    }

    #[test]
    fn even_modulus_dispatches_to_reference() {
        let m = U256::from_u64(1 << 20);
        let base = U256::from_u64(3);
        let exp = U256::from_u64(1000);
        assert_eq!(mod_pow(&base, &exp, &m), base.mod_pow(&exp, &m));
    }

    #[test]
    fn fixed_base_table_matches_windowed_pow() {
        let ctx = MontCtx::new(p());
        let g = U256::from_u64(4);
        let table = FixedBaseTable::new(&ctx, &g);
        for exp in [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(16),
            U256::from_u64(0xffff_ffff_ffff_ffff),
            U256::from_hex("4b126898d50c2d32c5b4da3497f13bbd2a2472230f3747fa9dee557624212f5a"),
        ] {
            assert_eq!(table.pow(&ctx, &exp), g.mod_pow(&exp, &p()), "exp {exp}");
        }
    }

    #[test]
    fn unreduced_operand_is_handled_by_to_mont() {
        let ctx = MontCtx::new(p());
        // a ≥ m: to_mont must still land on a·R mod m.
        let a = U256([u64::MAX; 4]);
        assert_eq!(ctx.reduce(&a), a.rem(&p()));
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_modulus_context_panics() {
        let _ = MontCtx::new(U256::from_u64(10));
    }
}
