//! Authenticated encryption: ChaCha20 + HMAC-SHA-256, encrypt-then-MAC.
//!
//! The Logging Interface seals log payloads with this scheme before
//! submitting them to the blockchain. The associated data (AAD) binds the
//! ciphertext to its log-entry header so a compromised component cannot
//! splice an encrypted payload under a different header.

use crate::chacha20::ChaCha20;
use crate::hmac::{derive_key, hmac_sha256_parts};
use crate::sha256::Digest;
use crate::{ct_eq, CryptoError};
use serde::{Deserialize, Serialize};

/// A 256-bit symmetric key — the federation-wide key *K* of the paper, or a
/// per-probe key held in the simulated TPM.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetricKey([u8; 32]);

impl SymmetricKey {
    /// Wraps raw key bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SymmetricKey(bytes)
    }

    /// Generates a fresh random key.
    #[must_use]
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        SymmetricKey(bytes)
    }

    /// Derives a named subkey (domain separation).
    #[must_use]
    pub fn derive(&self, label: &str) -> SymmetricKey {
        SymmetricKey(derive_key(&self.0, label))
    }

    /// Returns the raw key bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SymmetricKey(****)")
    }
}

impl From<[u8; 32]> for SymmetricKey {
    fn from(bytes: [u8; 32]) -> Self {
        SymmetricKey(bytes)
    }
}

/// Ciphertext plus the metadata needed to decrypt and authenticate it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBox {
    /// Per-message nonce. Uniqueness per key is the caller's duty; the
    /// Logging Interface derives it from (probe id, sequence number).
    pub nonce: [u8; 12],
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA-256 over nonce, AAD and ciphertext.
    pub tag: Digest,
}

impl SealedBox {
    /// Total wire size in bytes (nonce + ciphertext + tag).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        12 + self.ciphertext.len() + 32
    }
}

/// Encrypts `plaintext` under `key`, binding `aad` into the tag.
///
/// The encryption key and MAC key are derived from `key` with domain
/// separation, so the same `SymmetricKey` can be used for many messages as
/// long as nonces are unique.
#[must_use]
pub fn seal(key: &SymmetricKey, nonce: [u8; 12], aad: &[u8], plaintext: &[u8]) -> SealedBox {
    let enc_key = derive_key(key.as_bytes(), "drams.aead.enc");
    let mac_key = derive_key(key.as_bytes(), "drams.aead.mac");
    let ciphertext = ChaCha20::new(&enc_key, &nonce, 1).process(plaintext);
    let tag = mac(&mac_key, &nonce, aad, &ciphertext);
    SealedBox {
        nonce,
        ciphertext,
        tag,
    }
}

/// Verifies and decrypts a [`SealedBox`].
///
/// # Errors
///
/// Returns [`CryptoError::InvalidTag`] if the tag does not verify — i.e. the
/// ciphertext, nonce or AAD was tampered with, or the wrong key was used.
pub fn open(key: &SymmetricKey, aad: &[u8], sealed: &SealedBox) -> Result<Vec<u8>, CryptoError> {
    let enc_key = derive_key(key.as_bytes(), "drams.aead.enc");
    let mac_key = derive_key(key.as_bytes(), "drams.aead.mac");
    let expected = mac(&mac_key, &sealed.nonce, aad, &sealed.ciphertext);
    if !ct_eq(expected.as_bytes(), sealed.tag.as_bytes()) {
        return Err(CryptoError::InvalidTag);
    }
    Ok(ChaCha20::new(&enc_key, &sealed.nonce, 1).process(&sealed.ciphertext))
}

fn mac(mac_key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> Digest {
    // Unambiguous framing: lengths are included so (aad, ct) boundaries
    // cannot be shifted.
    let aad_len = (aad.len() as u64).to_be_bytes();
    let ct_len = (ciphertext.len() as u64).to_be_bytes();
    hmac_sha256_parts(mac_key, &[nonce, &aad_len, aad, &ct_len, ciphertext])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SymmetricKey {
        SymmetricKey::from_bytes([0x11; 32])
    }

    #[test]
    fn round_trip() {
        let sealed = seal(&key(), [1; 12], b"hdr", b"payload");
        assert_eq!(open(&key(), b"hdr", &sealed).unwrap(), b"payload");
    }

    #[test]
    fn empty_plaintext_round_trip() {
        let sealed = seal(&key(), [1; 12], b"", b"");
        assert_eq!(open(&key(), b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let mut sealed = seal(&key(), [1; 12], b"hdr", b"payload");
        sealed.ciphertext[0] ^= 1;
        assert_eq!(open(&key(), b"hdr", &sealed), Err(CryptoError::InvalidTag));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let mut sealed = seal(&key(), [1; 12], b"hdr", b"payload");
        sealed.nonce[0] ^= 1;
        assert_eq!(open(&key(), b"hdr", &sealed), Err(CryptoError::InvalidTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let sealed = seal(&key(), [1; 12], b"hdr", b"payload");
        assert_eq!(
            open(&key(), b"other", &sealed),
            Err(CryptoError::InvalidTag)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&key(), [1; 12], b"hdr", b"payload");
        let other = SymmetricKey::from_bytes([0x22; 32]);
        assert_eq!(open(&other, b"hdr", &sealed), Err(CryptoError::InvalidTag));
    }

    #[test]
    fn tampered_tag_rejected() {
        let mut sealed = seal(&key(), [1; 12], b"hdr", b"payload");
        let mut tag = *sealed.tag.as_bytes();
        tag[31] ^= 0x80;
        sealed.tag = Digest::from(tag);
        assert_eq!(open(&key(), b"hdr", &sealed), Err(CryptoError::InvalidTag));
    }

    #[test]
    fn nonce_uniqueness_changes_ciphertext() {
        let a = seal(&key(), [1; 12], b"", b"same message");
        let b = seal(&key(), [2; 12], b"", b"same message");
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let s = format!("{:?}", key());
        assert!(!s.contains("11"));
    }

    #[test]
    fn wire_len_accounts_for_all_fields() {
        let sealed = seal(&key(), [1; 12], b"", b"12345");
        assert_eq!(sealed.wire_len(), 12 + 5 + 32);
    }
}
