//! Binary Merkle trees with inclusion proofs.
//!
//! Used for (a) the transaction root in every block header and (b) the
//! segment anchoring of the hybrid database store (paper §III / ref \[9\]):
//! a batch of off-chain log entries is summarised by its Merkle root, and
//! only the root is committed on-chain; any entry can later be proven
//! included with a logarithmic-size proof.
//!
//! Leaf and internal hashes use distinct domain-separation prefixes
//! (`0x00` / `0x01`) to rule out second-preimage splices, and odd nodes are
//! promoted unchanged (no duplicate-last), avoiding the classic duplication
//! ambiguity.

use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

/// Which side a proof sibling sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Sibling is the left child; our running hash is the right child.
    Left,
    /// Sibling is the right child; our running hash is the left child.
    Right,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf within the original leaf sequence.
    pub leaf_index: usize,
    /// Bottom-up sibling path.
    pub siblings: Vec<(Digest, Side)>,
}

impl MerkleProof {
    /// Recomputes the root implied by `leaf_data` and this proof.
    #[must_use]
    pub fn implied_root(&self, leaf_data: &[u8]) -> Digest {
        let mut acc = hash_leaf(leaf_data);
        for (sibling, side) in &self.siblings {
            acc = match side {
                Side::Left => hash_internal(sibling, &acc),
                Side::Right => hash_internal(&acc, sibling),
            };
        }
        acc
    }

    /// Checks the proof against a known root.
    #[must_use]
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        self.implied_root(leaf_data) == *root
    }
}

/// A Merkle tree built over a sequence of byte-string leaves.
///
/// # Example
///
/// ```
/// use drams_crypto::merkle::MerkleTree;
///
/// let leaves: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 8]).collect();
/// let tree = MerkleTree::from_leaves(leaves.iter().map(|l| l.as_slice()));
/// let proof = tree.proof(3).unwrap();
/// assert!(proof.verify(&tree.root(), &leaves[3]));
/// assert!(!proof.verify(&tree.root(), &leaves[2]));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root].
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree from leaf byte strings.
    ///
    /// An empty input yields the conventional "empty root"
    /// `H(0x02)` so that empty batches still anchor deterministically.
    pub fn from_leaves<'a, I>(leaves: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let leaf_hashes: Vec<Digest> = leaves.into_iter().map(hash_leaf).collect();
        Self::from_leaf_hashes(leaf_hashes)
    }

    /// Builds a tree from precomputed leaf *hashes* (e.g. transaction ids).
    ///
    /// The caller is responsible for having domain-separated those hashes;
    /// internal nodes still use the internal prefix.
    #[must_use]
    pub fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        // ⌈log₂ n⌉ + 1 levels; preallocating avoids regrowth while the
        // tree is assembled bottom-up.
        let n = leaf_hashes.len();
        let depth = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize + 1
        };
        let mut levels = Vec::with_capacity(depth);
        levels.push(leaf_hashes);
        while levels.last().map(Vec::len).unwrap_or(0) > 1 {
            let prev = levels.last().expect("non-empty by loop condition");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(hash_internal(&prev[i], &prev[i + 1]));
                } else {
                    // odd node promoted unchanged
                    next.push(prev[i]);
                }
                i += 2;
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.first().map(Vec::len).unwrap_or(0)
    }

    /// True when the tree has no leaves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The root digest.
    #[must_use]
    pub fn root(&self) -> Digest {
        match self.levels.last() {
            Some(level) if !level.is_empty() => level[0],
            _ => empty_root(),
        }
    }

    /// Builds an inclusion proof for leaf `index`.
    ///
    /// Returns `None` if `index` is out of bounds.
    #[must_use]
    pub fn proof(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                let side = if sibling_idx < idx {
                    Side::Left
                } else {
                    Side::Right
                };
                siblings.push((level[sibling_idx], side));
            }
            // When the sibling is absent (odd promotion) the node moves up
            // unchanged and contributes no proof step.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }
}

/// Root of a zero-leaf tree.
#[must_use]
pub fn empty_root() -> Digest {
    Digest::of(&[0x02])
}

/// Hashes one tree level's adjacent pairs for an even-length run of
/// nodes, producing the parent nodes in order.
///
/// This is the chunk-friendly entry point for parallel tree builders: a
/// wide level split into even-length chunks, hashed concurrently, and
/// concatenated in chunk order yields exactly the level the serial
/// bottom-up pass in [`MerkleTree::from_leaf_hashes`] computes. A level's
/// final *odd* node (if any) is promoted unchanged and must be appended
/// by the caller.
///
/// # Panics
///
/// Panics when `pairs` has odd length — the caller split a level off a
/// pair boundary, which would silently shift every node to its right.
#[must_use]
pub fn hash_level_chunk(pairs: &[Digest]) -> Vec<Digest> {
    assert!(
        pairs.len() % 2 == 0,
        "level chunks must split at pair boundaries"
    );
    pairs
        .chunks_exact(2)
        .map(|p| hash_internal(&p[0], &p[1]))
        .collect()
}

fn hash_leaf(data: &[u8]) -> Digest {
    // Small leaves (tx ids, anchor records) take the one-shot digest
    // over a stack buffer; large leaves stream through the incremental
    // hasher, which compresses aligned blocks without staging.
    if data.len() < 128 {
        let mut buf = [0u8; 128];
        buf[0] = 0x00;
        buf[1..=data.len()].copy_from_slice(data);
        Sha256::digest(&buf[..=data.len()])
    } else {
        let mut h = Sha256::new();
        h.update(&[0x00]);
        h.update(data);
        h.finalize()
    }
}

fn hash_internal(left: &Digest, right: &Digest) -> Digest {
    let mut buf = [0u8; 65];
    buf[0] = 0x01;
    buf[1..33].copy_from_slice(left.as_bytes());
    buf[33..].copy_from_slice(right.as_bytes());
    Sha256::digest(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    fn tree_of(n: usize) -> (MerkleTree, Vec<Vec<u8>>) {
        let data = leaves(n);
        let tree = MerkleTree::from_leaves(data.iter().map(|l| l.as_slice()));
        (tree, data)
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let (tree, data) = tree_of(1);
        assert_eq!(tree.root(), hash_leaf(&data[0]));
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let tree = MerkleTree::from_leaves(std::iter::empty());
        assert_eq!(tree.root(), empty_root());
        assert!(tree.is_empty());
        assert!(tree.proof(0).is_none());
    }

    #[test]
    fn all_proofs_verify_for_many_sizes() {
        for n in 1..=17 {
            let (tree, data) = tree_of(n);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.proof(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let (tree, data) = tree_of(8);
        let proof = tree.proof(2).unwrap();
        assert!(!proof.verify(&tree.root(), &data[3]));
        assert!(!proof.verify(&tree.root(), b"forged"));
    }

    #[test]
    fn proof_fails_against_wrong_root() {
        let (tree, data) = tree_of(5);
        let (other, _) = tree_of(6);
        let proof = tree.proof(0).unwrap();
        assert!(!proof.verify(&other.root(), &data[0]));
    }

    #[test]
    fn root_depends_on_leaf_order() {
        let a = MerkleTree::from_leaves([b"x".as_slice(), b"y".as_slice()]);
        let b = MerkleTree::from_leaves([b"y".as_slice(), b"x".as_slice()]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn domain_separation_prevents_leaf_internal_confusion() {
        // A leaf whose bytes equal (left || right) of an internal node must
        // not hash to the internal node.
        let l = hash_leaf(b"a");
        let r = hash_leaf(b"b");
        let internal = hash_internal(&l, &r);
        let mut concat = Vec::new();
        concat.extend_from_slice(l.as_bytes());
        concat.extend_from_slice(r.as_bytes());
        assert_ne!(hash_leaf(&concat), internal);
    }

    #[test]
    fn tampering_any_leaf_changes_root() {
        let (tree, mut data) = tree_of(9);
        let original = tree.root();
        for i in 0..data.len() {
            data[i].push(0xff);
            let tampered = MerkleTree::from_leaves(data.iter().map(|l| l.as_slice()));
            assert_ne!(tampered.root(), original, "leaf {i}");
            data[i].pop();
        }
    }

    #[test]
    fn proof_sizes_are_logarithmic() {
        let (tree, _) = tree_of(1024);
        assert_eq!(tree.proof(0).unwrap().siblings.len(), 10);
    }

    #[test]
    fn leaf_hash_is_identical_across_stack_and_streamed_paths() {
        // hash_leaf switches implementation at 128 bytes; both sides of
        // the boundary must agree with the reference prefix-then-data
        // construction.
        for len in [0usize, 1, 63, 126, 127, 128, 129, 500] {
            let data = vec![0x5au8; len];
            let mut h = Sha256::new();
            h.update(&[0x00]);
            h.update(&data);
            assert_eq!(hash_leaf(&data), h.finalize(), "len {len}");
        }
    }

    #[test]
    fn from_leaf_hashes_matches_from_leaves() {
        let data = leaves(7);
        let t1 = MerkleTree::from_leaves(data.iter().map(|l| l.as_slice()));
        let hashes: Vec<Digest> = data.iter().map(|l| hash_leaf(l)).collect();
        let t2 = MerkleTree::from_leaf_hashes(hashes);
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn chunked_level_hashing_reproduces_the_serial_root() {
        // Rebuild the tree bottom-up with hash_level_chunk over varying
        // chunk splits (odd final node promoted by hand) and compare the
        // root to from_leaf_hashes — pins the parallel builder's merge.
        for n in [1usize, 2, 5, 8, 33, 64, 100] {
            let data = leaves(n);
            let hashes: Vec<Digest> = data.iter().map(|l| hash_leaf(l)).collect();
            let want = MerkleTree::from_leaf_hashes(hashes.clone()).root();
            for chunk_pairs in [1usize, 2, 7] {
                let mut level = hashes.clone();
                while level.len() > 1 {
                    let pair_count = level.len() / 2;
                    let (paired, rest) = level.split_at(pair_count * 2);
                    let mut next: Vec<Digest> = paired
                        .chunks(chunk_pairs * 2)
                        .flat_map(|c| hash_level_chunk(c))
                        .collect();
                    next.extend_from_slice(rest); // odd promotion
                    level = next;
                }
                assert_eq!(level[0], want, "n={n} chunk_pairs={chunk_pairs}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "pair boundaries")]
    fn hash_level_chunk_rejects_odd_runs() {
        hash_level_chunk(&[Digest::of(b"x")]);
    }
}
