//! Fixed-width 256/512-bit unsigned integer arithmetic.
//!
//! This is the number-theoretic backend for [`crate::schnorr`]: modular
//! multiplication uses a 512-bit intermediate product reduced with Knuth's
//! Algorithm D (TAOCP Vol. 2, §4.3.1), and modular exponentiation is plain
//! MSB-first square-and-multiply. The implementation favours auditability
//! over speed; a bit-level shift-subtract reference division lives in the
//! test module and is cross-checked against Algorithm D with proptest.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer, four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct U256(pub [u64; 4]);

/// A 512-bit unsigned integer, eight little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct U512(pub [u64; 8]);

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Constructs from little-endian limbs.
    #[must_use]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Constructs from a `u64`.
    #[must_use]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Parses a big-endian hex string (with or without `0x`).
    ///
    /// # Panics
    ///
    /// Panics on invalid hex or length > 64 nybbles. Intended for constants
    /// and tests.
    #[must_use]
    pub fn from_hex(s: &str) -> Self {
        let s = s.trim_start_matches("0x");
        assert!(s.len() <= 64, "hex too long for U256");
        let padded = format!("{s:0>64}");
        let mut bytes = [0u8; 32];
        for i in 0..32 {
            bytes[i] = u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).expect("invalid hex");
        }
        U256::from_be_bytes(bytes)
    }

    /// Constructs from 32 big-endian bytes.
    #[must_use]
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[8 * (3 - i)..8 * (3 - i) + 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serialises to 32 big-endian bytes.
    #[must_use]
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * (3 - i)..8 * (3 - i) + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Lowercase hex without leading zeros (at least one digit).
    #[must_use]
    pub fn to_hex(self) -> String {
        let s: String = self
            .to_be_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let trimmed = s.trim_start_matches('0');
        if trimmed.is_empty() {
            "0".to_string()
        } else {
            trimmed.to_string()
        }
    }

    /// True iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// True iff the value is even.
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Returns bit `i` (little-endian bit order).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// `(self + other, carry)`.
    #[must_use]
    pub fn overflowing_add(self, other: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(other.0[i]);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// `(self - other, borrow)`.
    #[must_use]
    pub fn overflowing_sub(self, other: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(other.0[i]);
            let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping subtraction (mod 2^256).
    #[must_use]
    pub fn wrapping_sub(self, other: U256) -> U256 {
        self.overflowing_sub(other).0
    }

    /// Full 256×256→512-bit product.
    #[must_use]
    pub fn full_mul(self, other: U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc =
                    u128::from(self.0[i]) * u128::from(other.0[j]) + u128::from(out[i + j]) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = out[i + 4].wrapping_add(carry as u64);
        }
        U512(out)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn rem(self, m: &U256) -> U256 {
        U512::from_u256(self).rem(m)
    }

    /// `(self + other) mod m`, for `self, other < m`.
    #[must_use]
    pub fn add_mod(self, other: U256, m: &U256) -> U256 {
        debug_assert!(self < *m && other < *m);
        let (sum, carry) = self.overflowing_add(other);
        if carry || sum >= *m {
            sum.wrapping_sub(*m)
        } else {
            sum
        }
    }

    /// `(self - other) mod m`, for `self, other < m`.
    #[must_use]
    pub fn sub_mod(self, other: U256, m: &U256) -> U256 {
        debug_assert!(self < *m && other < *m);
        let (diff, borrow) = self.overflowing_sub(other);
        if borrow {
            diff.overflowing_add(*m).0
        } else {
            diff
        }
    }

    /// `(self * other) mod m`.
    #[must_use]
    pub fn mul_mod(self, other: U256, m: &U256) -> U256 {
        self.full_mul(other).rem(m)
    }

    /// `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_pow(self, exp: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if *m == U256::ONE {
            return U256::ZERO;
        }
        let base = self.rem(m);
        let mut acc = U256::ONE;
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            acc = acc.mul_mod(acc, m);
            if exp.bit(i) {
                acc = acc.mul_mod(base, m);
            }
        }
        acc
    }

    /// Modular inverse for a **prime** modulus, via Fermat's little theorem.
    ///
    /// Returns `None` when `self ≡ 0 (mod m)`.
    #[must_use]
    pub fn mod_inv_prime(self, m: &U256) -> Option<U256> {
        if self.rem(m).is_zero() {
            return None;
        }
        // a^(m-2) mod m
        let exp = m.wrapping_sub(U256::from_u64(2));
        Some(self.mod_pow(&exp, m))
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl U512 {
    /// The value 0.
    pub const ZERO: U512 = U512([0; 8]);

    /// Zero-extends a [`U256`].
    #[must_use]
    pub fn from_u256(v: U256) -> Self {
        U512([v.0[0], v.0[1], v.0[2], v.0[3], 0, 0, 0, 0])
    }

    /// Truncates to the low 256 bits.
    #[must_use]
    pub fn low_u256(&self) -> U256 {
        U256([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// True iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// `self mod m` via Knuth Algorithm D.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn rem(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        let (_, r) = div_rem_knuth(&self.0, &m.0);
        r
    }

    /// `(self / m, self mod m)` via Knuth Algorithm D.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn div_rem(&self, m: &U256) -> (U512, U256) {
        assert!(!m.is_zero(), "division by zero");
        div_rem_knuth(&self.0, &m.0)
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0.iter().rev().map(|l| format!("{l:016x}")).collect();
        write!(f, "U512(0x{})", hex.trim_start_matches('0'))
    }
}

/// Knuth TAOCP Algorithm D: divides an 8-limb dividend by a ≤4-limb
/// divisor, returning (quotient, remainder).
fn div_rem_knuth(u_in: &[u64; 8], v_in: &[u64; 4]) -> (U512, U256) {
    // Trim divisor leading zero limbs.
    let mut n = 4;
    while n > 0 && v_in[n - 1] == 0 {
        n -= 1;
    }
    assert!(n > 0, "division by zero");

    // Trim dividend leading zero limbs (m = significant limb count).
    let mut m = 8;
    while m > 0 && u_in[m - 1] == 0 {
        m -= 1;
    }
    if m == 0 {
        return (U512::ZERO, U256::ZERO);
    }

    // Dividend smaller than divisor: quotient 0.
    if m < n || (m == n && cmp_limbs(&u_in[..m], &v_in[..n]) == Ordering::Less) {
        let mut r = [0u64; 4];
        r[..m.min(4)].copy_from_slice(&u_in[..m.min(4)]);
        return (U512::ZERO, U256(r));
    }

    // Single-limb divisor: simple schoolbook with u128.
    if n == 1 {
        let d = u128::from(v_in[0]);
        let mut q = [0u64; 8];
        let mut rem: u128 = 0;
        for i in (0..m).rev() {
            let cur = (rem << 64) | u128::from(u_in[i]);
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        return (U512(q), U256([rem as u64, 0, 0, 0]));
    }

    // D1: normalise so the divisor's top limb has its high bit set.
    let s = v_in[n - 1].leading_zeros();
    let mut vn = [0u64; 4];
    for i in 0..n {
        vn[i] = v_in[i] << s;
        if s > 0 && i > 0 {
            vn[i] |= v_in[i - 1] >> (64 - s);
        }
    }
    let mut un = [0u64; 9];
    if s > 0 {
        un[m] = u_in[m - 1] >> (64 - s);
    }
    for i in (0..m).rev() {
        un[i] = u_in[i] << s;
        if s > 0 && i > 0 {
            un[i] |= u_in[i - 1] >> (64 - s);
        }
    }

    let b: u128 = 1 << 64;
    let mut q = [0u64; 8];

    // D2..D7: main loop.
    for j in (0..=m - n).rev() {
        // D3: estimate qhat.
        let top = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
        let mut qhat = top / u128::from(vn[n - 1]);
        let mut rhat = top % u128::from(vn[n - 1]);
        loop {
            if qhat >= b || qhat * u128::from(vn[n - 2]) > (rhat << 64) + u128::from(un[j + n - 2])
            {
                qhat -= 1;
                rhat += u128::from(vn[n - 1]);
                if rhat < b {
                    continue;
                }
            }
            break;
        }

        // D4: multiply and subtract (Hacker's Delight divmnu pattern).
        let mut k: i128 = 0;
        for i in 0..n {
            let p = qhat * u128::from(vn[i]);
            let t = i128::from(un[j + i]) - k - ((p & 0xFFFF_FFFF_FFFF_FFFF) as i128);
            un[j + i] = t as u64;
            k = ((p >> 64) as i128) - (t >> 64);
        }
        let t = i128::from(un[j + n]) - k;
        un[j + n] = t as u64;

        // D5/D6: if we subtracted too much, add one divisor back.
        if t < 0 {
            qhat -= 1;
            let mut carry: u128 = 0;
            for i in 0..n {
                let sum = u128::from(un[j + i]) + u128::from(vn[i]) + carry;
                un[j + i] = sum as u64;
                carry = sum >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalise the remainder.
    let mut r = [0u64; 4];
    for i in 0..n {
        r[i] = un[i] >> s;
        if s > 0 && i + 1 < 9 {
            let hi = un[i + 1] << (64 - s);
            if s > 0 {
                r[i] |= hi;
            }
        }
    }
    (U512(q), U256(r))
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            non_eq => return non_eq,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The 256-bit safe prime used by the Schnorr group (see schnorr.rs).
    fn p() -> U256 {
        U256::from_hex("8232159ce3aaabcb7e79630eda13a97087fda834f152bdac26761be39f039a2b")
    }

    /// Bit-level shift-subtract division: slow, obviously-correct reference.
    fn rem_reference(a: &U512, m: &U256) -> U256 {
        assert!(!m.is_zero());
        let mut r = [0u64; 5]; // remainder < m < 2^256, plus a shift bit
        for i in (0..512).rev() {
            // r <<= 1
            for k in (1..5).rev() {
                r[k] = (r[k] << 1) | (r[k - 1] >> 63);
            }
            r[0] <<= 1;
            // set bit 0 to dividend bit i
            if (a.0[i / 64] >> (i % 64)) & 1 == 1 {
                r[0] |= 1;
            }
            // if r >= m { r -= m }
            let ge = if r[4] != 0 {
                true
            } else {
                cmp_limbs(&r[..4], &m.0) != Ordering::Less
            };
            if ge {
                let mut borrow = false;
                for k in 0..4 {
                    let (d1, b1) = r[k].overflowing_sub(m.0[k]);
                    let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
                    r[k] = d2;
                    borrow = b1 || b2;
                }
                r[4] = r[4].wrapping_sub(u64::from(borrow));
            }
        }
        U256([r[0], r[1], r[2], r[3]])
    }

    #[test]
    fn hex_round_trip() {
        let v = U256::from_hex("deadbeef00000000000000000000000000000000000000000000000000000001");
        assert_eq!(
            v.to_hex(),
            "deadbeef00000000000000000000000000000000000000000000000000000001"
        );
        assert_eq!(U256::ZERO.to_hex(), "0");
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
    }

    #[test]
    fn ordering_and_bits() {
        assert!(U256::ZERO < U256::ONE);
        assert!(
            U256::from_u64(5) < U256::from_hex("1_0000_0000_0000_0000".replace('_', "").as_str())
        );
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::from_u64(0x80).bits(), 8);
        assert_eq!(p().bits(), 256);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
        let (sum, carry) = a.overflowing_add(U256::ONE);
        assert!(carry);
        assert!(sum.is_zero());
        let (diff, borrow) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn full_mul_known_vectors() {
        // Generated with Python: a*b % p and full products.
        let a = U256::from_hex("1e2feb89414c343c1027c4d1c386bbc4cd613e30d8f16adf91b7584a2265b1f5");
        let b = U256::from_hex("35bf992dc9e9c616612e7696a6cecc1b78e510617311d8a3c2ce6f447ed4d57b");
        let expected =
            U256::from_hex("56207b1b110548d733f7e5ac57130b19930c6e168cbb671b5a693a00e659beee");
        assert_eq!(a.mul_mod(b, &p()), expected);
    }

    #[test]
    fn mod_pow_known_vectors() {
        let a = U256::from_hex("1e2feb89414c343c1027c4d1c386bbc4cd613e30d8f16adf91b7584a2265b1f5");
        let b = U256::from_hex("35bf992dc9e9c616612e7696a6cecc1b78e510617311d8a3c2ce6f447ed4d57b");
        let expected =
            U256::from_hex("430cf7ed87b2c96201a971d0467e2fc1a7a7484f5febacea11770107c72273fd");
        assert_eq!(a.mod_pow(&b, &p()), expected);

        let a2 = U256::from_hex("194ef8d98b1f26bae5511f7efbe10a425cb2c4b115ef09fc566e109e79039461");
        let b2 = U256::from_hex("4b126898d50c2d32c5b4da3497f13bbd2a2472230f3747fa9dee557624212f5a");
        let e2 = U256::from_hex("460e7b59797d7c4e8e47954354d5f7dcc930046d95f347c990631d7b7411aaeb");
        assert_eq!(a2.mod_pow(&b2, &p()), e2);
    }

    #[test]
    fn mul_mod_second_vector() {
        let a = U256::from_hex("194ef8d98b1f26bae5511f7efbe10a425cb2c4b115ef09fc566e109e79039461");
        let b = U256::from_hex("4b126898d50c2d32c5b4da3497f13bbd2a2472230f3747fa9dee557624212f5a");
        let e = U256::from_hex("2063dbe58327f33d8e8066530d622d19f69e64b3d151bbc29840ee24c4a31470");
        assert_eq!(a.mul_mod(b, &p()), e);
    }

    #[test]
    fn mod_pow_edges() {
        let m = p();
        assert_eq!(U256::from_u64(2).mod_pow(&U256::ZERO, &m), U256::ONE);
        assert_eq!(U256::from_u64(2).mod_pow(&U256::ONE, &m), U256::from_u64(2));
        assert_eq!(U256::ZERO.mod_pow(&U256::from_u64(5), &m), U256::ZERO);
        assert_eq!(
            U256::from_u64(7).mod_pow(&U256::ONE, &U256::ONE),
            U256::ZERO
        );
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // a^(p-1) ≡ 1 mod p for prime p.
        let m = p();
        let exp = m.wrapping_sub(U256::ONE);
        for a in [2u64, 3, 65537, 0xdead_beef] {
            assert_eq!(U256::from_u64(a).mod_pow(&exp, &m), U256::ONE);
        }
    }

    #[test]
    fn mod_inv_prime_works() {
        let m = p();
        for a in [2u64, 3, 12345, 0xffff_ffff] {
            let a = U256::from_u64(a);
            let inv = a.mod_inv_prime(&m).unwrap();
            assert_eq!(a.mul_mod(inv, &m), U256::ONE);
        }
        assert!(U256::ZERO.mod_inv_prime(&m).is_none());
    }

    #[test]
    fn division_by_single_limb() {
        let a = U512::from_u256(U256::from_u64(1000));
        let (q, r) = a.div_rem(&U256::from_u64(7));
        assert_eq!(q.low_u256(), U256::from_u64(142));
        assert_eq!(r, U256::from_u64(6));
    }

    #[test]
    fn division_identity_reconstructs() {
        // q*m + r == a for a handful of structured cases.
        let m = p();
        let cases = [
            U512::from_u256(U256::ZERO),
            U512::from_u256(U256::ONE),
            U512::from_u256(m),
            U512([u64::MAX; 8]),
            U512([0, 0, 0, 0, 1, 0, 0, 0]),
            U512([0xdead_beef, 0, 0, 0, 0, 0, 0, 0x8000_0000_0000_0000]),
        ];
        for a in cases {
            let (q, r) = a.div_rem(&m);
            assert!(r < m);
            // reconstruct: q*m + r (verify low 512 bits match)
            let q_lo = q.low_u256();
            // q fits in 256 bits only when a < m << 256; here m has bit 255 set
            // so q always fits 257 bits; for these cases verify via reference.
            assert_eq!(r, rem_reference(&a, &m), "case {a:?} q={q_lo:?}");
        }
    }

    #[test]
    fn rem_smaller_than_divisor_is_identity() {
        let m = p();
        let small = U256::from_u64(42);
        assert_eq!(small.rem(&m), small);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = U512::from_u256(U256::ONE).rem(&U256::ZERO);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn knuth_matches_reference(limbs in prop::array::uniform8(any::<u64>()),
                                   mlimbs in prop::array::uniform4(any::<u64>())) {
            prop_assume!(mlimbs != [0, 0, 0, 0]);
            let a = U512(limbs);
            let m = U256(mlimbs);
            prop_assert_eq!(a.rem(&m), rem_reference(&a, &m));
        }

        #[test]
        fn mul_mod_commutes(a in prop::array::uniform4(any::<u64>()),
                            b in prop::array::uniform4(any::<u64>())) {
            let m = p();
            let a = U256(a).rem(&m);
            let b = U256(b).rem(&m);
            prop_assert_eq!(a.mul_mod(b, &m), b.mul_mod(a, &m));
        }

        #[test]
        fn add_mod_inverse(a in prop::array::uniform4(any::<u64>())) {
            let m = p();
            let a = U256(a).rem(&m);
            let neg = U256::ZERO.sub_mod(a, &m);
            prop_assert_eq!(a.add_mod(neg, &m), U256::ZERO);
        }

        #[test]
        fn mul_distributes_over_add(a in prop::array::uniform4(any::<u64>()),
                                    b in prop::array::uniform4(any::<u64>()),
                                    c in prop::array::uniform4(any::<u64>())) {
            let m = p();
            let a = U256(a).rem(&m);
            let b = U256(b).rem(&m);
            let c = U256(c).rem(&m);
            let lhs = a.mul_mod(b.add_mod(c, &m), &m);
            let rhs = a.mul_mod(b, &m).add_mod(a.mul_mod(c, &m), &m);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn pow_adds_exponents(a in prop::array::uniform4(any::<u64>()),
                              x in any::<u64>(), y in any::<u64>()) {
            let m = p();
            let a = U256(a).rem(&m);
            prop_assume!(!a.is_zero());
            let lhs = a.mod_pow(&U256::from_u64(x), &m)
                       .mul_mod(a.mod_pow(&U256::from_u64(y), &m), &m);
            // x + y may overflow u64; do it in U256.
            let (exp, _) = U256::from_u64(x).overflowing_add(U256::from_u64(y));
            let rhs = a.mod_pow(&exp, &m);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn be_bytes_round_trips(a in prop::array::uniform4(any::<u64>())) {
            let v = U256(a);
            prop_assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        }
    }
}
