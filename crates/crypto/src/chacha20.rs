//! RFC 8439 ChaCha20 stream cipher.
//!
//! The Logging Interface encrypts every log payload under the
//! federation-wide symmetric key *K* before it is written to the (publicly
//! readable) blockchain — paper §II: "as data stored on a blockchain are
//! visible to all users, encryption is used to protect data
//! confidentiality."

/// ChaCha20 cipher instance bound to a key, nonce and initial counter.
///
/// Encryption and decryption are the same XOR operation.
///
/// # Example
///
/// ```
/// use drams_crypto::chacha20::ChaCha20;
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut buf = *b"confidential log payload";
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_ne!(&buf, b"confidential log payload");
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_eq!(&buf, b"confidential log payload");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

impl ChaCha20 {
    /// Creates a cipher with the given 256-bit key, 96-bit nonce and
    /// initial block counter.
    #[must_use]
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 { state }
    }

    fn block(&self, counter: u32) -> [u8; 64] {
        let mut working = self.state;
        working[12] = counter;
        let initial = working;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream into `data` in place.
    ///
    /// Calling this twice with identically constructed ciphers restores the
    /// original plaintext.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let start = self.state[12];
        for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(start.wrapping_add(block_idx as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        let consumed = data.len().div_ceil(64) as u32;
        self.state[12] = start.wrapping_add(consumed);
    }

    /// Encrypts (or decrypts) `data`, returning a new buffer.
    #[must_use]
    pub fn process(mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(&mut out);
        out
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn rfc_key() -> [u8; 32] {
        let mut key = [0u8; 32];
        for (i, item) in key.iter_mut().enumerate() {
            *item = i as u8;
        }
        key
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_function() {
        let key = rfc_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block(1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption() {
        let key = rfc_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = ChaCha20::new(&key, &nonce, 1).process(plaintext);
        assert_eq!(
            hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = ChaCha20::new(&key, &nonce, 0).process(&data);
            let pt = ChaCha20::new(&key, &nonce, 0).process(&ct);
            assert_eq!(pt, data, "len {len}");
            if len > 0 {
                assert_ne!(ct, data, "ciphertext must differ, len {len}");
            }
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let oneshot = ChaCha20::new(&key, &nonce, 0).process(&data);
        let mut streaming = data.clone();
        let mut cipher = ChaCha20::new(&key, &nonce, 0);
        // Apply in 64-byte-aligned chunks: counter advances per block.
        let (a, b) = streaming.split_at_mut(128);
        cipher.apply_keystream(a);
        cipher.apply_keystream(b);
        assert_eq!(streaming, oneshot);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [1u8; 32];
        let data = [0u8; 64];
        let c1 = ChaCha20::new(&key, &[0u8; 12], 0).process(&data);
        let c2 = ChaCha20::new(&key, &[1u8; 12], 0).process(&data);
        assert_ne!(c1, c2);
    }
}
