//! Fixed-vector determinism regression.
//!
//! The vectors below were produced by the pre-Montgomery implementation
//! (Algorithm D `mod_pow`, buffered SHA-256). Signatures and digests are
//! consensus-critical: any arithmetic or hashing change that alters a
//! single byte here would fork the chain (determinism invariant #4), so
//! these bytes are pinned forever.

use drams_crypto::schnorr::Keypair;
use drams_crypto::sha256::Digest;

const MESSAGE: &[u8] = b"drams fixed vector message";

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn public_keys_are_pinned() {
    let cases = [
        (
            b"vector-key-1".as_slice(),
            "7396a3ed0c6a90db73be83b1db159a73966fedcd4273c366c44750040c493f12",
        ),
        (
            b"vector-key-2",
            "590d6b5f441f33d1b955ffe2c0af0cb554ff587a97299cc5ca8ea7ec5b163f9a",
        ),
        (
            b"li-1",
            "366417cfe9a283612604d81c2ed68d80cb81732180eb725c57a4c90e2c225cfc",
        ),
    ];
    for (seed, expected) in cases {
        let kp = Keypair::from_seed(seed);
        assert_eq!(
            hex(&kp.public().to_bytes()),
            expected,
            "public key drifted for seed {:?}",
            String::from_utf8_lossy(seed)
        );
    }
}

#[test]
fn signatures_are_pinned_byte_for_byte() {
    let cases = [
        (
            b"vector-key-1".as_slice(),
            "01a0600c86fad209c7f88453e577614a7ac27804d69476d948cc9a173f38e280\
             11c58bb2df5de573c68d56a7608754c3a2750d7f8f44fef3680917876b4e52f9",
        ),
        (
            b"vector-key-2",
            "0e83fd729fa41c19cc454df9ca3701a29a5e55453d71f5718c6308c88836ee2f\
             2e4633179d897368b5298d327385150c107562faa5cc9b827b6f5404be1ba534",
        ),
        (
            b"li-1",
            "0405193680f518e21cd57ab60fda35751e1499950517a0ae40d36bc030b52650\
             0fd179bf7d5cd3c0c6fd867e26ecc93c50c5f21fc56112bf60b2cf2214c974bb",
        ),
    ];
    for (seed, expected) in cases {
        let kp = Keypair::from_seed(seed);
        let sig = kp.sign(MESSAGE);
        assert_eq!(
            hex(&sig.to_bytes()),
            expected.replace(char::is_whitespace, ""),
            "signature drifted for seed {:?}",
            String::from_utf8_lossy(seed)
        );
        // And the three signing paths agree bit-for-bit.
        assert_eq!(sig, kp.secret().sign(MESSAGE));
        assert_eq!(sig, kp.secret().sign_reference(MESSAGE));
        kp.public().verify(MESSAGE, &sig).unwrap();
        kp.public().verify_reference(MESSAGE, &sig).unwrap();
    }
}

#[test]
fn digests_are_pinned() {
    assert_eq!(
        Digest::of(b"").to_hex(),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        Digest::of(MESSAGE).to_hex(),
        "08b4fd3b550575cbafb9526a26abfadfaa3a58fc68d18f38371e9ad33e7c1195"
    );
    let mut long = Vec::new();
    for i in 0..1000u32 {
        long.extend_from_slice(&i.to_be_bytes());
    }
    assert_eq!(
        Digest::of(&long).to_hex(),
        "86c114b302158bb25d711fd1d2482c1adf42caf6f972a0492e78436e2733b590"
    );
}
