//! Property-based equivalence: the Montgomery fast path vs the
//! Algorithm D reference, over random operands, random odd moduli and
//! the real Schnorr group moduli — plus batch-vs-individual Schnorr
//! verification including adversarial mixed batches.

use drams_crypto::bignum::U256;
use drams_crypto::montgomery::{self, FixedBaseTable, MontCtx};
use drams_crypto::schnorr::{batch_verify, group_p, group_q, Keypair, PublicKey, Signature};
use proptest::prelude::*;

fn odd(mut limbs: [u64; 4]) -> U256 {
    limbs[0] |= 1;
    U256(limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mont_mul_matches_mul_mod_for_group_p(a in prop::array::uniform4(any::<u64>()),
                                            b in prop::array::uniform4(any::<u64>())) {
        let m = group_p();
        let ctx = MontCtx::new(m);
        let a = U256(a).rem(&m);
        let b = U256(b).rem(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(b, &m));
    }

    #[test]
    fn mont_mul_matches_mul_mod_for_group_q(a in prop::array::uniform4(any::<u64>()),
                                            b in prop::array::uniform4(any::<u64>())) {
        let m = group_q();
        let ctx = MontCtx::new(m);
        let a = U256(a).rem(&m);
        let b = U256(b).rem(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(b, &m));
    }

    #[test]
    fn mont_mul_matches_mul_mod_for_random_odd_moduli(a in prop::array::uniform4(any::<u64>()),
                                                      b in prop::array::uniform4(any::<u64>()),
                                                      mlimbs in prop::array::uniform4(any::<u64>())) {
        let m = odd(mlimbs);
        prop_assume!(m > U256::ONE);
        let ctx = MontCtx::new(m);
        let a = U256(a).rem(&m);
        let b = U256(b).rem(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(b, &m));
    }

    #[test]
    fn reduce_matches_rem_for_unreduced_inputs(a in prop::array::uniform4(any::<u64>()),
                                               mlimbs in prop::array::uniform4(any::<u64>())) {
        let m = odd(mlimbs);
        prop_assume!(!m.is_zero());
        let ctx = MontCtx::new(m);
        let a = U256(a);
        prop_assert_eq!(ctx.reduce(&a), a.rem(&m));
    }
}

proptest! {
    // mod_pow is ~100x the cost of a multiply; fewer cases keep the
    // suite fast while still sweeping full-width exponents.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mont_pow_matches_reference_for_group_p(base in prop::array::uniform4(any::<u64>()),
                                              exp in prop::array::uniform4(any::<u64>())) {
        let m = group_p();
        let base = U256(base);
        let exp = U256(exp);
        prop_assert_eq!(montgomery::mod_pow(&base, &exp, &m), base.mod_pow(&exp, &m));
    }

    #[test]
    fn mont_pow_matches_reference_for_group_q(base in prop::array::uniform4(any::<u64>()),
                                              exp in prop::array::uniform4(any::<u64>())) {
        let m = group_q();
        let base = U256(base);
        let exp = U256(exp);
        prop_assert_eq!(montgomery::mod_pow(&base, &exp, &m), base.mod_pow(&exp, &m));
    }

    #[test]
    fn mont_pow_matches_reference_for_random_odd_moduli(base in prop::array::uniform4(any::<u64>()),
                                                        exp in prop::array::uniform4(any::<u64>()),
                                                        mlimbs in prop::array::uniform4(any::<u64>())) {
        let m = odd(mlimbs);
        prop_assume!(!m.is_zero());
        let base = U256(base);
        let exp = U256(exp);
        prop_assert_eq!(montgomery::mod_pow(&base, &exp, &m), base.mod_pow(&exp, &m));
    }

    #[test]
    fn fixed_base_table_matches_reference(exp in prop::array::uniform4(any::<u64>())) {
        let m = group_p();
        let ctx = MontCtx::new(m);
        let g = U256::from_u64(4);
        let table = FixedBaseTable::new(&ctx, &g);
        let exp = U256(exp);
        prop_assert_eq!(table.pow(&ctx, &exp), g.mod_pow(&exp, &m));
    }
}

fn batch_of(n: usize, keys: usize) -> (Vec<Keypair>, Vec<Vec<u8>>, Vec<Signature>, Vec<usize>) {
    let kps: Vec<Keypair> = (0..keys)
        .map(|i| Keypair::from_seed(format!("batch-key-{i}").as_bytes()))
        .collect();
    let mut msgs = Vec::with_capacity(n);
    let mut sigs = Vec::with_capacity(n);
    let mut owners = Vec::with_capacity(n);
    for i in 0..n {
        let owner = i % keys;
        let msg = format!("batch message {i}").into_bytes();
        sigs.push(kps[owner].sign(&msg));
        msgs.push(msg);
        owners.push(owner);
    }
    (kps, msgs, sigs, owners)
}

fn items<'a>(
    kps: &[Keypair],
    msgs: &'a [Vec<u8>],
    sigs: &[Signature],
    owners: &[usize],
) -> Vec<(PublicKey, &'a [u8], Signature)> {
    owners
        .iter()
        .zip(msgs)
        .zip(sigs)
        .map(|((&o, m), &s)| (kps[o].public(), m.as_slice(), s))
        .collect()
}

#[test]
fn batch_verify_accepts_valid_batches() {
    for (n, keys) in [(1, 1), (4, 2), (17, 3), (64, 5)] {
        let (kps, msgs, sigs, owners) = batch_of(n, keys);
        let batch = items(&kps, &msgs, &sigs, &owners);
        assert!(batch_verify(&batch).is_ok(), "n={n} keys={keys}");
    }
}

#[test]
fn batch_verify_empty_is_ok() {
    assert!(batch_verify(&[]).is_ok());
}

#[test]
fn batch_verify_names_the_culprit() {
    let (kps, msgs, sigs, owners) = batch_of(16, 3);
    for bad in [0usize, 7, 15] {
        let mut sigs = sigs.clone();
        // Substitute a signature over a different message: well-formed
        // scalars, wrong statement.
        sigs[bad] = kps[owners[bad]].sign(b"a different message");
        let batch = items(&kps, &msgs, &sigs, &owners);
        let err = batch_verify(&batch).expect_err("tampered batch must fail");
        assert_eq!(err.culprit, bad);
        // …and equivalence with individual verification holds.
        for (i, (pk, m, s)) in batch.iter().enumerate() {
            assert_eq!(pk.verify(m, s).is_ok(), i != bad);
        }
    }
}

#[test]
fn batch_verify_reports_first_of_multiple_culprits() {
    let (kps, msgs, mut sigs, owners) = batch_of(12, 2);
    sigs[3] = kps[owners[3]].sign(b"forged 3");
    sigs[9] = kps[owners[9]].sign(b"forged 9");
    let batch = items(&kps, &msgs, &sigs, &owners);
    assert_eq!(batch_verify(&batch).unwrap_err().culprit, 3);
}

#[test]
fn batch_verify_rejects_swapped_key() {
    let (kps, msgs, sigs, mut owners) = batch_of(8, 2);
    // Attribute signature 5 to the wrong key.
    owners[5] ^= 1;
    let batch = items(&kps, &msgs, &sigs, &owners);
    assert_eq!(batch_verify(&batch).unwrap_err().culprit, 5);
}

#[test]
fn batch_verify_matches_individual_on_bitflips() {
    // Equivalence on adversarial mixed batches: every single-bit flip of
    // one signature must make batch and individual verification agree.
    let (kps, msgs, sigs, owners) = batch_of(4, 2);
    let base_items = items(&kps, &msgs, &sigs, &owners);
    for byte in [0usize, 31, 32, 63] {
        let mut bytes = sigs[2].to_bytes();
        bytes[byte] ^= 0x01;
        let Ok(tampered) = Signature::from_bytes(bytes) else {
            continue; // out-of-range: rejected before any batch math
        };
        let mut batch = base_items.clone();
        batch[2].2 = tampered;
        let individual_ok = batch.iter().all(|(pk, m, s)| pk.verify(m, s).is_ok());
        let batch_result = batch_verify(&batch);
        assert_eq!(batch_result.is_ok(), individual_ok, "byte {byte}");
        if let Err(e) = batch_result {
            assert_eq!(e.culprit, 2);
        }
    }
}

#[test]
fn batch_verify_handles_duplicate_entries() {
    let (kps, msgs, sigs, owners) = batch_of(3, 1);
    let mut batch = items(&kps, &msgs, &sigs, &owners);
    let dup = batch[1];
    batch.push(dup);
    assert!(batch_verify(&batch).is_ok());
}

#[test]
fn chunked_batch_verify_matches_whole_batch() {
    use drams_crypto::schnorr::merge_chunk_verdicts;
    let (kps, msgs, sigs, owners) = batch_of(23, 3);
    // Healthy batch, then batches with one and with several forgeries
    // (including one in each chunk).
    let forgery_sets: [&[usize]; 4] = [&[], &[7], &[3, 9, 20], &[0, 22]];
    for forged in forgery_sets {
        let mut sigs = sigs.clone();
        for &i in forged {
            sigs[i] = kps[owners[i]].sign(b"forged");
        }
        let batch = items(&kps, &msgs, &sigs, &owners);
        let whole = batch_verify(&batch);
        for chunk_size in [1usize, 4, 8, 23, 64] {
            let chunked = merge_chunk_verdicts(
                batch
                    .chunks(chunk_size)
                    .enumerate()
                    .map(|(i, c)| (i * chunk_size, batch_verify(c))),
            );
            assert_eq!(chunked, whole, "forged={forged:?} chunk={chunk_size}");
        }
    }
}
