//! The transport seam: how wire messages travel between Figure-1
//! services.
//!
//! The scenario runtime emits typed messages between services; every
//! message that crosses a federation link (request, response, log
//! delivery — the same set the fault plane classifies) can be carried by
//! a pluggable [`Transport`]. Two backends exist:
//!
//! * [`DesTransport`] — the identity backend: messages go straight into
//!   the event queue, exactly the pre-transport code path. This is the
//!   conformance oracle.
//! * `drams_net::TcpTransport` (in the `drams-net` crate) — every wire
//!   message is serialised into a CRC-checked [`WireFrame`], carried
//!   through the destination service's socket endpoint (a thread or a
//!   separate `drams-node` process) and scheduled from the bytes that
//!   came back off the wire.
//!
//! The scenario runtime stays the single logical clock for both
//! backends; that is what makes the differential conformance suite
//! (`tests/transport_conformance.rs`) possible: the same `ScenarioSpec`
//! must produce byte-identical alerts and ground truth over either
//! transport (DESIGN.md invariant 9).

use std::fmt;

use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;

use crate::des::SimTime;

/// Magic bytes opening every frame body: `DRNF` (DRams Net Frame).
pub const FRAME_MAGIC: u32 = 0x4452_4e46;

/// Wire-format version carried in every frame body.
pub const FRAME_VERSION: u8 = 1;

/// Hard ceiling on a frame body (header + payload). A length prefix
/// above this is rejected before any allocation — a corrupt or hostile
/// peer cannot make the reader reserve gigabytes.
pub const MAX_FRAME_BODY: usize = 1 << 20;

/// The Figure-1 service a frame is addressed to.
///
/// PDP slots and Logging Interfaces are per-instance endpoints (one per
/// federated cloud, one per tenant): under the TCP backend each runs in
/// its own thread or `drams-node` process, exactly the deployment story
/// of the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireRole {
    /// The Policy Enforcement Point service at the tenant edge.
    Pep,
    /// The PDP (plus PRP) instance in slot `slot` (one per cloud under
    /// per-cloud placement, slot 0 under central placement).
    Pdp {
        /// PDP slot index.
        slot: u32,
    },
    /// The Logging Interface with index `index` (tenants `0..n`, the
    /// infrastructure LI at `n`).
    Li {
        /// LI index.
        index: u32,
    },
    /// The blockchain node hosting the monitor contract.
    Chain,
    /// The Analyser.
    Analyser,
}

impl WireRole {
    /// Stable numeric tag used on the wire.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            WireRole::Pep => 1,
            WireRole::Pdp { .. } => 2,
            WireRole::Li { .. } => 3,
            WireRole::Chain => 4,
            WireRole::Analyser => 5,
        }
    }

    /// Instance parameter (PDP slot / LI index; 0 for singleton roles).
    #[must_use]
    pub fn param(self) -> u32 {
        match self {
            WireRole::Pdp { slot } => slot,
            WireRole::Li { index } => index,
            WireRole::Pep | WireRole::Chain | WireRole::Analyser => 0,
        }
    }

    /// Rebuilds a role from its wire `(tag, param)` pair.
    pub fn from_wire(tag: u8, param: u32) -> Result<Self, TransportError> {
        match tag {
            1 => Ok(WireRole::Pep),
            2 => Ok(WireRole::Pdp { slot: param }),
            3 => Ok(WireRole::Li { index: param }),
            4 => Ok(WireRole::Chain),
            5 => Ok(WireRole::Analyser),
            other => Err(TransportError::Malformed(format!(
                "unknown role tag {other}"
            ))),
        }
    }
}

impl fmt::Display for WireRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireRole::Pep => write!(f, "pep"),
            WireRole::Pdp { slot } => write!(f, "pdp/{slot}"),
            WireRole::Li { index } => write!(f, "li/{index}"),
            WireRole::Chain => write!(f, "chain"),
            WireRole::Analyser => write!(f, "analyser"),
        }
    }
}

/// One framed wire message: the unit a [`Transport`] carries.
///
/// The body encoding (canonical codec, `crates/crypto/src/codec.rs`) is
///
/// ```text
/// magic u32 ("DRNF") | version u8 | role tag u8 | role param u32 |
/// kind u8 | seq u64 | delay u64 | payload (varint len + bytes)
/// ```
///
/// and the byte-level wire framing (`drams-net`) wraps the body exactly
/// like a WAL record: `len u32 | crc32(body) u32 | body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Destination service.
    pub role: WireRole,
    /// Message discriminant (scenario-defined; 0 is reserved for
    /// transport-level pings).
    pub kind: u8,
    /// Strictly increasing per-run sequence number; endpoints reject
    /// regressions, so a reordering or replaying wire is caught at the
    /// frame layer.
    pub seq: u64,
    /// The virtual-time delivery delay the scheduler attached; carried
    /// on the wire so the delivery time is literally read back off it.
    pub delay: SimTime,
    /// The canonical-codec payload of the wire message itself.
    pub payload: Vec<u8>,
}

impl WireFrame {
    /// A transport-level ping (kind 0) addressed to `role`.
    #[must_use]
    pub fn ping(role: WireRole, seq: u64) -> Self {
        WireFrame {
            role,
            kind: 0,
            seq,
            delay: 0,
            payload: Vec::new(),
        }
    }
}

impl Encode for WireFrame {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(FRAME_MAGIC);
        w.put_u8(FRAME_VERSION);
        w.put_u8(self.role.tag());
        w.put_u32(self.role.param());
        w.put_u8(self.kind);
        w.put_u64(self.seq);
        w.put_u64(self.delay);
        w.put_bytes(&self.payload);
    }
}

impl Decode for WireFrame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let magic = r.get_u32()?;
        if magic != FRAME_MAGIC {
            return Err(CryptoError::Malformed("bad frame magic".to_string()));
        }
        let version = r.get_u8()?;
        if version != FRAME_VERSION {
            return Err(CryptoError::Malformed(format!(
                "unsupported frame version {version}"
            )));
        }
        let tag = r.get_u8()?;
        let param = r.get_u32()?;
        let role =
            WireRole::from_wire(tag, param).map_err(|e| CryptoError::Malformed(e.to_string()))?;
        let kind = r.get_u8()?;
        let seq = r.get_u64()?;
        let delay = r.get_u64()?;
        let payload = r.get_bytes()?;
        Ok(WireFrame {
            role,
            kind,
            seq,
            delay,
            payload,
        })
    }
}

/// Typed failures of the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// An underlying socket operation failed (message carries the
    /// `std::io::Error` text so the type stays I/O-free).
    Io(String),
    /// A frame failed its CRC or structural check.
    Corrupt(String),
    /// A length prefix exceeded [`MAX_FRAME_BODY`].
    Oversized {
        /// The advertised body length.
        len: u64,
        /// The enforced ceiling.
        max: u64,
    },
    /// The peer closed the connection mid-frame.
    Closed,
    /// A read hit its deadline with no complete frame (retryable).
    TimedOut,
    /// A frame decoded but its contents were invalid (bad role tag,
    /// unknown kind, trailing bytes).
    Malformed(String),
    /// A frame arrived at an endpoint pinned to a different role.
    RoleMismatch {
        /// The role the endpoint serves.
        expected: WireRole,
        /// The role the frame was addressed to.
        got: WireRole,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            TransportError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes (max {max})")
            }
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::TimedOut => write!(f, "read timed out"),
            TransportError::Malformed(why) => write!(f, "malformed frame: {why}"),
            TransportError::RoleMismatch { expected, got } => {
                write!(f, "frame for {got} arrived at {expected} endpoint")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A carrier for wire frames between the scenario runtime and the
/// Figure-1 service endpoints.
///
/// The runtime performs one synchronous round-trip per wire message:
/// the frame travels to the destination service's endpoint, is
/// validated there, and comes back; the message the scheduler enqueues
/// is decoded from the returned bytes. Synchronous round-trips mean no
/// frame is ever in flight when a scripted crash fires — which is what
/// keeps crash/reconnect deterministic.
pub trait Transport {
    /// Whether frames actually leave the process boundary. The runtime
    /// skips serialisation entirely when this is `false`.
    fn is_wire(&self) -> bool;

    /// Carries `frame` to its destination endpoint and returns the
    /// frame as delivered (decoded from the returned bytes).
    fn roundtrip(&mut self, frame: WireFrame) -> Result<WireFrame, TransportError>;

    /// Notifies the transport that the service behind `role` crashed
    /// and restarted: wire backends drop the connection and tear down
    /// the endpoint so the next frame reconnects to a fresh one.
    fn restart(&mut self, role: WireRole) -> Result<(), TransportError>;

    /// Human-readable backend name (for reports and logs).
    fn name(&self) -> &'static str;
}

/// The identity backend: frames never leave the process, the scheduler
/// consumes exactly the message the service emitted. This is the
/// conformance oracle every wire backend is measured against.
#[derive(Debug, Default, Clone, Copy)]
pub struct DesTransport;

impl Transport for DesTransport {
    fn is_wire(&self) -> bool {
        false
    }

    fn roundtrip(&mut self, frame: WireFrame) -> Result<WireFrame, TransportError> {
        Ok(frame)
    }

    fn restart(&mut self, _role: WireRole) -> Result<(), TransportError> {
        Ok(())
    }

    fn name(&self) -> &'static str {
        "des"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_canonically() {
        let frame = WireFrame {
            role: WireRole::Pdp { slot: 2 },
            kind: 1,
            seq: 99,
            delay: 1_500,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = frame.to_canonical_bytes();
        let back = WireFrame::from_canonical_bytes(&bytes).expect("decode");
        assert_eq!(frame, back);
    }

    #[test]
    fn role_tags_round_trip() {
        for role in [
            WireRole::Pep,
            WireRole::Pdp { slot: 7 },
            WireRole::Li { index: 3 },
            WireRole::Chain,
            WireRole::Analyser,
        ] {
            assert_eq!(
                WireRole::from_wire(role.tag(), role.param()).expect("tag"),
                role
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let frame = WireFrame::ping(WireRole::Chain, 1);
        let mut bytes = frame.to_canonical_bytes();
        bytes[0] ^= 0xff;
        assert!(WireFrame::from_canonical_bytes(&bytes).is_err());
        let mut bytes = frame.to_canonical_bytes();
        bytes[4] = FRAME_VERSION + 1;
        assert!(WireFrame::from_canonical_bytes(&bytes).is_err());
    }

    #[test]
    fn des_transport_is_the_identity() {
        let mut t = DesTransport;
        assert!(!t.is_wire());
        let frame = WireFrame::ping(WireRole::Analyser, 42);
        assert_eq!(t.roundtrip(frame.clone()).expect("identity"), frame);
        assert!(t.restart(WireRole::Analyser).is_ok());
    }
}
