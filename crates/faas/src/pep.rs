//! Policy Enforcement Points.
//!
//! PEPs sit at tenant edges (paper §I: "PEPs are instead deployed in a
//! distributed manner on the tenants edge, thus to intercept all
//! communications … and enforce the calculated accesses"). A PEP
//! intercepts each access, forwards it to the PDP and enforces the
//! returned decision with a configurable bias for the non-definitive
//! outcomes (`NotApplicable` / `Indeterminate`).

use crate::model::{PepId, TenantId};
use crate::msg::{CorrelationId, RequestEnvelope, ResponseEnvelope};
use drams_policy::decision::Decision;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a PEP does with non-definitive decisions (XACML §7.2.1 PEP
/// biases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnforcementBias {
    /// Deny-biased: anything but `Permit` is refused.
    DenyBiased,
    /// Permit-biased: anything but `Deny` is granted.
    PermitBiased,
}

/// Result of enforcing one decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Enforcement {
    /// The decision that was enforced.
    pub decision: Decision,
    /// Whether access was actually granted.
    pub granted: bool,
}

/// A Policy Enforcement Point.
#[derive(Debug)]
pub struct Pep {
    id: PepId,
    tenant: TenantId,
    bias: EnforcementBias,
    next_correlation: u64,
    pending: HashMap<CorrelationId, RequestEnvelope>,
    granted: u64,
    refused: u64,
}

impl Pep {
    /// Creates a PEP for a tenant edge.
    #[must_use]
    pub fn new(id: PepId, tenant: TenantId, bias: EnforcementBias) -> Self {
        // Correlation ids are globally unique by namespacing with the PEP
        // id in the high bits.
        let next_correlation = (u64::from(id.0)) << 40;
        Pep {
            id,
            tenant,
            bias,
            next_correlation,
            pending: HashMap::new(),
            granted: 0,
            refused: 0,
        }
    }

    /// This PEP's id.
    #[must_use]
    pub fn id(&self) -> PepId {
        self.id
    }

    /// The tenant this PEP guards.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The enforcement bias in force.
    #[must_use]
    pub fn bias(&self) -> EnforcementBias {
        self.bias
    }

    /// Intercepts an access attempt, producing the envelope to forward to
    /// the PDP.
    pub fn intercept(
        &mut self,
        service: impl Into<String>,
        request: drams_policy::attr::Request,
        issued_at: crate::des::SimTime,
    ) -> RequestEnvelope {
        let correlation = CorrelationId(self.next_correlation);
        self.next_correlation += 1;
        let envelope = RequestEnvelope {
            correlation,
            tenant: self.tenant,
            pep: self.id,
            service: service.into(),
            request,
            issued_at,
        };
        self.pending.insert(correlation, envelope.clone());
        envelope
    }

    /// Enforces a decision received from the PDP. Returns `None` for
    /// responses that do not correlate with a pending request (stale or
    /// forged).
    pub fn enforce(&mut self, response: &ResponseEnvelope) -> Option<Enforcement> {
        self.pending.remove(&response.correlation)?;
        let decision = response.response.decision;
        let granted = match self.bias {
            EnforcementBias::DenyBiased => decision == Decision::Permit,
            EnforcementBias::PermitBiased => decision != Decision::Deny,
        };
        if granted {
            self.granted += 1;
        } else {
            self.refused += 1;
        }
        Some(Enforcement { decision, granted })
    }

    /// Abandons a pending request whose deadline budget is exhausted
    /// (the PDP stayed unreachable through every retry). Returns `true`
    /// when the correlation was actually pending; a response arriving
    /// after abandonment is treated as stale by [`enforce`](Self::enforce).
    pub fn abandon(&mut self, correlation: CorrelationId) -> bool {
        self.pending.remove(&correlation).is_some()
    }

    /// Requests forwarded but not yet answered.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// `(granted, refused)` counters.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.granted, self.refused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::sha256::Digest;
    use drams_policy::attr::Request;
    use drams_policy::decision::{ExtDecision, Response};

    fn pep(bias: EnforcementBias) -> Pep {
        Pep::new(PepId(3), TenantId(3), bias)
    }

    fn respond(env: &RequestEnvelope, ext: ExtDecision) -> ResponseEnvelope {
        ResponseEnvelope {
            correlation: env.correlation,
            pep: env.pep,
            response: Response::new(ext, vec![]),
            policy_version: Digest::ZERO,
            decided_at: 10,
        }
    }

    #[test]
    fn correlation_ids_are_unique_and_namespaced() {
        let mut p = pep(EnforcementBias::DenyBiased);
        let a = p.intercept("svc", Request::new(), 0);
        let b = p.intercept("svc", Request::new(), 1);
        assert_ne!(a.correlation, b.correlation);
        assert_eq!(a.correlation.0 >> 40, 3);
    }

    #[test]
    fn deny_biased_enforcement() {
        let mut p = pep(EnforcementBias::DenyBiased);
        for (ext, expect_granted) in [
            (ExtDecision::Permit, true),
            (ExtDecision::Deny, false),
            (ExtDecision::NotApplicable, false),
            (ExtDecision::IndeterminateDP, false),
        ] {
            let env = p.intercept("svc", Request::new(), 0);
            let e = p.enforce(&respond(&env, ext)).unwrap();
            assert_eq!(e.granted, expect_granted, "{ext:?}");
        }
        let (granted, refused) = p.counters();
        assert_eq!((granted, refused), (1, 3));
    }

    #[test]
    fn permit_biased_enforcement() {
        let mut p = pep(EnforcementBias::PermitBiased);
        for (ext, expect_granted) in [
            (ExtDecision::Permit, true),
            (ExtDecision::Deny, false),
            (ExtDecision::NotApplicable, true),
            (ExtDecision::IndeterminateD, true),
        ] {
            let env = p.intercept("svc", Request::new(), 0);
            let e = p.enforce(&respond(&env, ext)).unwrap();
            assert_eq!(e.granted, expect_granted, "{ext:?}");
        }
    }

    #[test]
    fn uncorrelated_response_rejected() {
        let mut p = pep(EnforcementBias::DenyBiased);
        let env = p.intercept("svc", Request::new(), 0);
        let mut resp = respond(&env, ExtDecision::Permit);
        resp.correlation = CorrelationId(999);
        assert!(p.enforce(&resp).is_none());
        assert_eq!(p.pending_count(), 1);
        // replaying after the real one also fails
        let real = respond(&env, ExtDecision::Permit);
        assert!(p.enforce(&real).is_some());
        assert!(p.enforce(&real).is_none());
    }

    #[test]
    fn abandoned_requests_reject_late_responses() {
        let mut p = pep(EnforcementBias::DenyBiased);
        let env = p.intercept("svc", Request::new(), 0);
        assert!(p.abandon(env.correlation));
        assert!(!p.abandon(env.correlation), "second abandon is a no-op");
        assert_eq!(p.pending_count(), 0);
        // The response finally limps in after the give-up: stale.
        assert!(p.enforce(&respond(&env, ExtDecision::Permit)).is_none());
        assert_eq!(p.counters(), (0, 0));
    }
}
