//! The FaaS federation model: clouds, sections, tenants and links.
//!
//! Mirrors Figure 1 of the paper: member clouds contribute *tenants*
//! (virtual spaces of computing resources) carved into *sections*; a
//! jointly-owned *infrastructure tenant* hosts the PDP, the PRP and the
//! Analyser; PEPs sit at each tenant's edge.

use crate::des::{SimTime, MILLIS};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a member cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CloudId(pub u32);

/// Identifier of a tenant. Tenant 0 is by convention the infrastructure
/// tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The infrastructure tenant shared by all federation clouds.
    pub const INFRASTRUCTURE: TenantId = TenantId(0);

    /// True for the infrastructure tenant.
    #[must_use]
    pub fn is_infrastructure(&self) -> bool {
        *self == Self::INFRASTRUCTURE
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infrastructure() {
            write!(f, "tenant-infra")
        } else {
            write!(f, "tenant-{}", self.0)
        }
    }
}

/// Identifier of a PEP instance (one per member tenant edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PepId(pub u32);

impl fmt::Display for PepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pep-{}", self.0)
    }
}

/// A latency model for one link: base plus uniformly-distributed jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed one-way base latency.
    pub base: SimTime,
    /// Maximum additional uniform jitter.
    pub jitter: SimTime,
}

impl LatencyModel {
    /// A constant-latency link.
    #[must_use]
    pub fn fixed(base: SimTime) -> Self {
        LatencyModel { base, jitter: 0 }
    }

    /// Samples one traversal time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        if self.jitter == 0 {
            self.base
        } else {
            self.base + rng.gen_range(0..=self.jitter)
        }
    }
}

/// Description of one member tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// The tenant id.
    pub id: TenantId,
    /// The owning cloud.
    pub cloud: CloudId,
    /// The PEP guarding this tenant's edge.
    pub pep: PepId,
    /// Service names hosted in this tenant (the protected resources).
    pub services: Vec<String>,
}

/// The whole federation topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationSpec {
    /// Member tenants (infrastructure tenant excluded).
    pub tenants: Vec<TenantSpec>,
    /// Latency of intra-tenant hops (service → PEP).
    pub intra_tenant: LatencyModel,
    /// Latency between a member tenant and the infrastructure tenant
    /// (PEP → PDP).
    pub tenant_to_infra: LatencyModel,
    /// Latency from any component to its local Logging Interface.
    pub to_logging_interface: LatencyModel,
}

impl FederationSpec {
    /// Builds a symmetric federation: `clouds` member clouds with
    /// `tenants_per_cloud` tenants each and `services_per_tenant` services
    /// per tenant.
    #[must_use]
    pub fn symmetric(clouds: u32, tenants_per_cloud: u32, services_per_tenant: u32) -> Self {
        let mut tenants = Vec::new();
        let mut next_tenant = 1u32; // 0 is the infrastructure tenant
        for cloud in 0..clouds {
            for _ in 0..tenants_per_cloud {
                let id = TenantId(next_tenant);
                tenants.push(TenantSpec {
                    id,
                    cloud: CloudId(cloud),
                    pep: PepId(next_tenant),
                    services: (0..services_per_tenant)
                        .map(|s| format!("svc-{next_tenant}-{s}"))
                        .collect(),
                });
                next_tenant += 1;
            }
        }
        FederationSpec {
            tenants,
            intra_tenant: LatencyModel {
                base: MILLIS / 2,
                jitter: MILLIS / 4,
            },
            tenant_to_infra: LatencyModel {
                base: 5 * MILLIS,
                jitter: 2 * MILLIS,
            },
            to_logging_interface: LatencyModel {
                base: MILLIS / 4,
                jitter: MILLIS / 10,
            },
        }
    }

    /// Number of member tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Looks a tenant up by id.
    #[must_use]
    pub fn tenant(&self, id: TenantId) -> Option<&TenantSpec> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// All PEP ids in the federation.
    #[must_use]
    pub fn pep_ids(&self) -> Vec<PepId> {
        self.tenants.iter().map(|t| t.pep).collect()
    }

    /// All service names across all tenants.
    #[must_use]
    pub fn all_services(&self) -> Vec<&str> {
        self.tenants
            .iter()
            .flat_map(|t| t.services.iter().map(String::as_str))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symmetric_topology_counts() {
        let spec = FederationSpec::symmetric(3, 2, 4);
        assert_eq!(spec.tenant_count(), 6);
        assert_eq!(spec.pep_ids().len(), 6);
        assert_eq!(spec.all_services().len(), 24);
        // Tenant ids start at 1 (0 = infrastructure).
        assert!(spec.tenants.iter().all(|t| !t.id.is_infrastructure()));
    }

    #[test]
    fn tenant_lookup() {
        let spec = FederationSpec::symmetric(2, 1, 1);
        assert!(spec.tenant(TenantId(1)).is_some());
        assert!(spec.tenant(TenantId(99)).is_none());
    }

    #[test]
    fn latency_sampling_is_bounded() {
        let model = LatencyModel {
            base: 100,
            jitter: 50,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let l = model.sample(&mut rng);
            assert!((100..=150).contains(&l));
        }
        assert_eq!(LatencyModel::fixed(42).sample(&mut rng), 42);
    }

    #[test]
    fn infrastructure_tenant_display() {
        assert_eq!(TenantId::INFRASTRUCTURE.to_string(), "tenant-infra");
        assert_eq!(TenantId(3).to_string(), "tenant-3");
        assert_eq!(PepId(3).to_string(), "pep-3");
    }
}
