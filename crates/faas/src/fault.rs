//! Deterministic per-link network fault plane.
//!
//! The DES delivers every message perfectly and instantly-in-order; this
//! module makes the network lossy *on purpose* while keeping runs
//! byte-replayable. A [`FaultPlane`] sits between a service's `Outbox`
//! and the [`ServiceRuntime`](crate::des::ServiceRuntime) router (via the
//! runtime's net shim): for every message on a configured link it decides
//! a fate — drop, duplicate, reorder (a bounded extra delay), or a fixed
//! plus jittered delay — and timed [`PartitionWindow`]s cut a pair of
//! sites off from each other entirely.
//!
//! Determinism contract: the plane draws from its own RNG **only** for
//! messages that match an active [`LinkFault`], and always in the same
//! order (drop, duplicate, reorder, then per-copy jitter). Messages on
//! unconfigured or inactive links consume zero randomness, so adding a
//! fault window to one link never perturbs traffic on another, and two
//! runs with the same seed and the same [`FaultPlan`] see byte-identical
//! fault sequences.

use crate::des::SimTime;
use crate::model::CloudId;
use rand::rngs::StdRng;
use rand::Rng;

/// Logical endpoint of a federation link: a member cloud or the jointly
/// owned infrastructure tenant (home of the central PDP, the PRP, the
/// infrastructure Logging Interface, the chain and the Analyser).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Site {
    /// A member cloud.
    Cloud(CloudId),
    /// The infrastructure tenant.
    Infra,
}

/// Fault specification for one (directed) link, active inside a time
/// window. `None` endpoints are wildcards. Probabilities are in permille
/// so specs stay integer-only and canonically comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    /// Sending site (`None` matches any sender).
    pub from: Option<Site>,
    /// Receiving site (`None` matches any receiver).
    pub to: Option<Site>,
    /// Probability (‰) that a message is dropped outright.
    pub drop_permille: u32,
    /// Probability (‰) that a message is delivered twice.
    pub duplicate_permille: u32,
    /// Probability (‰) that a message is reordered: it picks up an extra
    /// uniform delay in `0..=reorder_spread`, letting later sends overtake.
    pub reorder_permille: u32,
    /// Maximum extra delay a reordered message picks up.
    pub reorder_spread: SimTime,
    /// Fixed extra delay added to every matched message.
    pub delay: SimTime,
    /// Uniform jitter in `0..=jitter` added on top of `delay`, drawn
    /// independently per delivered copy.
    pub jitter: SimTime,
    /// Window start (inclusive).
    pub active_from: SimTime,
    /// Window end (exclusive).
    pub active_until: SimTime,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            from: None,
            to: None,
            drop_permille: 0,
            duplicate_permille: 0,
            reorder_permille: 0,
            reorder_spread: 0,
            delay: 0,
            jitter: 0,
            active_from: 0,
            active_until: 0,
        }
    }
}

impl LinkFault {
    fn matches(&self, now: SimTime, from: Site, to: Site) -> bool {
        now >= self.active_from
            && now < self.active_until
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }

    /// Whether this spec can make messages vanish (drives degraded-mode
    /// timeout widening: only message loss threatens epoch deadlines).
    #[must_use]
    pub fn is_lossy(&self) -> bool {
        self.drop_permille > 0
    }
}

/// A timed partition between two sites: while active, **no** message
/// crosses the pair in either direction (matching is unordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One side of the cut.
    pub a: Site,
    /// The other side.
    pub b: Site,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive) — the heal time.
    pub until: SimTime,
}

impl PartitionWindow {
    fn cuts(&self, now: SimTime, x: Site, y: Site) -> bool {
        now >= self.from
            && now < self.until
            && ((self.a == x && self.b == y) || (self.a == y && self.b == x))
    }
}

/// Declarative fault schedule for one scenario run: link faults plus
/// partitions. An empty plan (the default) is a perfect network.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Per-link fault specs; the **first** matching active spec applies.
    pub links: Vec<LinkFault>,
    /// Timed partitions.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.partitions.is_empty()
    }

    /// End of the last fault window of any kind (0 for an empty plan).
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        let links = self.links.iter().map(|l| l.active_until);
        let parts = self.partitions.iter().map(|p| p.until);
        links.chain(parts).max().unwrap_or(0)
    }

    /// Merged *disruption* windows: the time ranges during which messages
    /// can be lost (lossy links or partitions). Windows overlapping or
    /// within `settle` of each other merge, so a consumer scheduling a
    /// degraded mode per window never restores inside a follow-on window.
    /// Returned sorted and disjoint.
    #[must_use]
    pub fn disruption_windows(&self, settle: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut raw: Vec<(SimTime, SimTime)> = self
            .links
            .iter()
            .filter(|l| l.is_lossy() && l.active_until > l.active_from)
            .map(|l| (l.active_from, l.active_until))
            .chain(
                self.partitions
                    .iter()
                    .filter(|p| p.until > p.from)
                    .map(|p| (p.from, p.until)),
            )
            .collect();
        raw.sort_unstable();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
        for (f, u) in raw {
            match merged.last_mut() {
                Some((_, end)) if f <= end.saturating_add(settle) => *end = (*end).max(u),
                _ => merged.push((f, u)),
            }
        }
        merged
    }
}

/// Counters of what the plane actually did to traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Messages dropped by a lossy link.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages given a reordering delay.
    pub reordered: u64,
    /// Messages given a fixed/jittered delay (> 0).
    pub delayed: u64,
    /// Messages swallowed by an active partition.
    pub partition_blocked: u64,
}

/// The runtime half: a [`FaultPlan`] plus its dedicated RNG stream and
/// counters. One instance serves a whole scenario run.
#[derive(Debug)]
pub struct FaultPlane {
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultPlane {
    /// Builds a plane over `plan`, drawing from `rng` (callers pass a
    /// dedicated named stream so fault draws never perturb other streams).
    #[must_use]
    pub fn new(plan: FaultPlan, rng: StdRng) -> Self {
        FaultPlane {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The plan this plane executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What the plane has done so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether `a` and `b` are cut off from each other at `now`. Draws no
    /// randomness.
    #[must_use]
    pub fn partitioned(&self, now: SimTime, a: Site, b: Site) -> bool {
        a != b && self.plan.partitions.iter().any(|p| p.cuts(now, a, b))
    }

    /// Decides the fate of one message sent from `from` to `to` at `now`:
    /// returns the extra delays of every delivered copy (empty = the
    /// message is lost). `allow_drop = false` is for links whose protocol
    /// has no retransmission (e.g. probe→LI evidence delivery): drop and
    /// partition verdicts degrade to plain delivery so evidence is never
    /// silently destroyed by the *fault* plane (adversaries destroying
    /// evidence is the attack layer's job, and must stay detectable).
    ///
    /// RNG discipline: messages on unmatched/inactive links draw nothing;
    /// matched messages draw in a fixed order (drop, duplicate, reorder,
    /// per-copy jitter).
    pub fn deliveries(
        &mut self,
        now: SimTime,
        from: Site,
        to: Site,
        allow_drop: bool,
    ) -> Vec<SimTime> {
        if self.partitioned(now, from, to) {
            if allow_drop {
                self.stats.partition_blocked += 1;
                return Vec::new();
            }
            // No-retransmit link inside a partition: deliver unharmed.
            return vec![0];
        }
        let Some(link) = self
            .plan
            .links
            .iter()
            .find(|l| l.matches(now, from, to))
            .cloned()
        else {
            return vec![0];
        };
        if link.drop_permille > 0 && self.rng.gen_range(0u32..1000) < link.drop_permille {
            if allow_drop {
                self.stats.dropped += 1;
                return Vec::new();
            }
            // Drawn for determinism, but the link may not lose this
            // message: fall through to plain (possibly delayed) delivery.
        }
        let copies = if link.duplicate_permille > 0
            && self.rng.gen_range(0u32..1000) < link.duplicate_permille
        {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let reorder_extra = if link.reorder_permille > 0
            && self.rng.gen_range(0u32..1000) < link.reorder_permille
        {
            self.stats.reordered += 1;
            if link.reorder_spread > 0 {
                self.rng.gen_range(0..=link.reorder_spread)
            } else {
                0
            }
        } else {
            0
        };
        let mut delays = Vec::with_capacity(copies);
        for _ in 0..copies {
            let jitter = if link.jitter > 0 {
                self.rng.gen_range(0..=link.jitter)
            } else {
                0
            };
            let extra = link.delay + jitter + reorder_extra;
            if extra > 0 {
                self.stats.delayed += 1;
            }
            delays.push(extra);
        }
        delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{MILLIS, SECONDS};
    use rand::SeedableRng;

    const A: Site = Site::Cloud(CloudId(1));
    const B: Site = Site::Cloud(CloudId(2));

    fn plane(plan: FaultPlan) -> FaultPlane {
        FaultPlane::new(plan, StdRng::seed_from_u64(42))
    }

    #[test]
    fn empty_plan_is_a_perfect_network() {
        let mut p = plane(FaultPlan::default());
        for t in [0, MILLIS, SECONDS] {
            assert_eq!(p.deliveries(t, A, Site::Infra, true), vec![0]);
        }
        assert!(!p.partitioned(0, A, Site::Infra));
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn unmatched_links_draw_no_randomness() {
        // Two planes with the same seed: one sees only unmatched traffic
        // first, the other goes straight to the matched link. The fates
        // on the matched link must be identical — proof the unmatched
        // messages consumed zero randomness.
        let plan = FaultPlan {
            links: vec![LinkFault {
                from: Some(A),
                to: Some(Site::Infra),
                drop_permille: 500,
                jitter: 2 * MILLIS,
                active_from: 0,
                active_until: SECONDS,
                ..LinkFault::default()
            }],
            partitions: vec![],
        };
        let mut quiet = plane(plan.clone());
        let mut noisy = plane(plan);
        for _ in 0..100 {
            assert_eq!(noisy.deliveries(10, B, A, true), vec![0]); // unmatched
        }
        let a: Vec<_> = (0..50)
            .map(|_| quiet.deliveries(10, A, Site::Infra, true))
            .collect();
        let b: Vec<_> = (0..50)
            .map(|_| noisy.deliveries(10, A, Site::Infra, true))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn drop_and_duplicate_fates_occur_and_are_deterministic() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                drop_permille: 300,
                duplicate_permille: 300,
                active_from: 0,
                active_until: SECONDS,
                ..LinkFault::default()
            }],
            partitions: vec![],
        };
        let run = |seed: u64| -> Vec<Vec<SimTime>> {
            let mut p = FaultPlane::new(FaultPlan { ..plan.clone() }, StdRng::seed_from_u64(seed));
            (0..200).map(|_| p.deliveries(5, A, B, true)).collect()
        };
        let first = run(7);
        assert_eq!(first, run(7), "same seed, same fates");
        let dropped = first.iter().filter(|d| d.is_empty()).count();
        let duplicated = first.iter().filter(|d| d.len() == 2).count();
        assert!(dropped > 20, "expected drops, got {dropped}");
        assert!(duplicated > 20, "expected duplicates, got {duplicated}");
    }

    #[test]
    fn window_bounds_are_inclusive_exclusive() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                drop_permille: 1000,
                active_from: 100,
                active_until: 200,
                ..LinkFault::default()
            }],
            partitions: vec![],
        };
        let mut p = plane(plan);
        assert_eq!(p.deliveries(99, A, B, true), vec![0]);
        assert!(p.deliveries(100, A, B, true).is_empty());
        assert!(p.deliveries(199, A, B, true).is_empty());
        assert_eq!(p.deliveries(200, A, B, true), vec![0]);
        assert_eq!(p.stats().dropped, 2);
    }

    #[test]
    fn delay_and_jitter_are_bounded() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                delay: 3 * MILLIS,
                jitter: MILLIS,
                active_from: 0,
                active_until: SECONDS,
                ..LinkFault::default()
            }],
            partitions: vec![],
        };
        let mut p = plane(plan);
        for _ in 0..100 {
            let d = p.deliveries(0, A, B, true);
            assert_eq!(d.len(), 1);
            assert!((3 * MILLIS..=4 * MILLIS).contains(&d[0]), "delay {}", d[0]);
        }
        assert_eq!(p.stats().delayed, 100);
    }

    #[test]
    fn partitions_match_unordered_and_heal() {
        let plan = FaultPlan {
            links: vec![],
            partitions: vec![PartitionWindow {
                a: A,
                b: Site::Infra,
                from: 10,
                until: 50,
            }],
        };
        let mut p = plane(plan);
        assert!(p.partitioned(10, A, Site::Infra));
        assert!(p.partitioned(49, Site::Infra, A), "unordered match");
        assert!(!p.partitioned(50, A, Site::Infra), "healed");
        assert!(!p.partitioned(20, B, Site::Infra), "other pair unaffected");
        assert!(p.deliveries(20, A, Site::Infra, true).is_empty());
        assert_eq!(p.stats().partition_blocked, 1);
    }

    #[test]
    fn no_retransmit_links_are_never_starved() {
        // allow_drop = false: drops and partitions degrade to delivery.
        let plan = FaultPlan {
            links: vec![LinkFault {
                drop_permille: 1000,
                active_from: 0,
                active_until: SECONDS,
                ..LinkFault::default()
            }],
            partitions: vec![PartitionWindow {
                a: A,
                b: Site::Infra,
                from: 0,
                until: SECONDS,
            }],
        };
        let mut p = plane(plan);
        for _ in 0..50 {
            assert!(!p.deliveries(5, A, B, false).is_empty());
            assert!(!p.deliveries(5, A, Site::Infra, false).is_empty());
        }
        assert_eq!(p.stats().dropped, 0);
        assert_eq!(p.stats().partition_blocked, 0);
    }

    #[test]
    fn first_matching_link_wins() {
        let plan = FaultPlan {
            links: vec![
                LinkFault {
                    from: Some(A),
                    drop_permille: 1000,
                    active_from: 0,
                    active_until: SECONDS,
                    ..LinkFault::default()
                },
                LinkFault {
                    delay: 9 * MILLIS,
                    active_from: 0,
                    active_until: SECONDS,
                    ..LinkFault::default()
                },
            ],
            partitions: vec![],
        };
        let mut p = plane(plan);
        assert!(p.deliveries(1, A, B, true).is_empty(), "first spec: drop");
        assert_eq!(
            p.deliveries(1, B, A, true),
            vec![9 * MILLIS],
            "fallback spec"
        );
    }

    #[test]
    fn disruption_windows_merge_lossy_links_and_partitions() {
        let plan = FaultPlan {
            links: vec![
                // Lossy: contributes a window.
                LinkFault {
                    drop_permille: 100,
                    active_from: 100,
                    active_until: 200,
                    ..LinkFault::default()
                },
                // Delay-only: no loss, no disruption window.
                LinkFault {
                    delay: MILLIS,
                    active_from: 5_000,
                    active_until: 9_000,
                    ..LinkFault::default()
                },
            ],
            partitions: vec![
                PartitionWindow {
                    a: A,
                    b: B,
                    from: 180,
                    until: 400,
                },
                PartitionWindow {
                    a: A,
                    b: Site::Infra,
                    from: 1_000,
                    until: 1_100,
                },
            ],
        };
        // settle 50: [100,200] and [180,400] overlap → merge; [1000,1100]
        // stays separate (gap 600 > 50); the delay-only link is ignored.
        assert_eq!(
            plan.disruption_windows(50),
            vec![(100, 400), (1_000, 1_100)]
        );
        // settle large enough to bridge the gap → one window.
        assert_eq!(plan.disruption_windows(700), vec![(100, 1_100)]);
        assert_eq!(plan.horizon(), 9_000);
        assert!(!plan.is_empty());
        assert!(FaultPlan::default().is_empty());
    }
}
