//! Workload and policy generators for the experiments.
//!
//! * [`PoissonArrivals`] — exponential inter-arrival times for request
//!   load generation.
//! * [`Zipf`] — skewed popularity over services/subjects (real access
//!   workloads are never uniform).
//! * [`RequestGenerator`] — draws realistic access requests over a fixed
//!   attribute vocabulary.
//! * [`PolicyGenerator`] — draws random policies *within the analysable
//!   fragment*, parameterised by policy count and rules per policy, used
//!   by the PDP-scaling experiment (E5) and by property-based tests that
//!   cross-validate the symbolic analyser against the concrete engine.

use crate::des::SimTime;
use drams_policy::attr::{AttributeId, Category, Request};
use drams_policy::combining::CombiningAlg;
use drams_policy::decision::Effect;
use drams_policy::expr::{Expr, Func};
use drams_policy::policy::{Policy, PolicySet};
use drams_policy::rule::Rule;
use drams_policy::target::Target;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential inter-arrival sampler (a Poisson arrival process).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean_interarrival: f64,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_sec` arrivals per virtual second.
    ///
    /// # Panics
    ///
    /// Panics when the rate is not strictly positive.
    #[must_use]
    pub fn with_rate_per_sec(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        PoissonArrivals {
            mean_interarrival: 1_000_000.0 / rate_per_sec,
        }
    }

    /// Samples the next inter-arrival gap.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let u: f64 = rng.gen_range(1e-12..1.0);
        (-u.ln() * self.mean_interarrival).ceil() as SimTime
    }
}

/// Zipf-distributed index sampler over `n` items with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with skew `s` (s = 0 is uniform).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s < 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Samples a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// The attribute vocabulary the generators draw from. Requests and
/// policies share it, so generated requests actually exercise generated
/// policies.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    /// Subject roles.
    pub roles: Vec<String>,
    /// Action identifiers.
    pub actions: Vec<String>,
    /// Resource types.
    pub resource_types: Vec<String>,
    /// Environment hour range (0..24 by default).
    pub hours: std::ops::Range<i64>,
}

impl Default for Vocabulary {
    fn default() -> Self {
        Vocabulary {
            roles: ["doctor", "nurse", "researcher", "admin", "auditor"]
                .map(String::from)
                .to_vec(),
            actions: ["read", "write", "delete", "share"]
                .map(String::from)
                .to_vec(),
            resource_types: ["record", "image", "prescription", "report"]
                .map(String::from)
                .to_vec(),
            hours: 0..24,
        }
    }
}

/// Draws access requests over a [`Vocabulary`] with Zipf-skewed role and
/// resource popularity.
#[derive(Debug)]
pub struct RequestGenerator {
    vocab: Vocabulary,
    role_dist: Zipf,
    type_dist: Zipf,
    rng: StdRng,
}

impl RequestGenerator {
    /// Creates a generator with skew `s` and a deterministic seed.
    #[must_use]
    pub fn new(vocab: Vocabulary, skew: f64, seed: u64) -> Self {
        let role_dist = Zipf::new(vocab.roles.len(), skew);
        let type_dist = Zipf::new(vocab.resource_types.len(), skew);
        RequestGenerator {
            vocab,
            role_dist,
            type_dist,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The vocabulary in use.
    #[must_use]
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Draws one complete request (every vocabulary attribute present —
    /// the shape the analyser's complete-request assumption describes).
    pub fn next_request(&mut self) -> Request {
        let role = &self.vocab.roles[self.role_dist.sample(&mut self.rng)];
        let action_idx = self.rng.gen_range(0..self.vocab.actions.len());
        let action = &self.vocab.actions[action_idx];
        let rtype = &self.vocab.resource_types[self.type_dist.sample(&mut self.rng)];
        let hour = self.rng.gen_range(self.vocab.hours.clone());
        Request::builder()
            .subject("role", role.as_str())
            .action("id", action.as_str())
            .resource("type", rtype.as_str())
            .environment("hour", hour)
            .build()
    }
}

/// Parameters for [`PolicyGenerator`].
#[derive(Debug, Clone)]
pub struct PolicyShape {
    /// Number of leaf policies under the root.
    pub policies: usize,
    /// Rules per policy.
    pub rules_per_policy: usize,
    /// Root combining algorithm.
    pub root_algorithm: CombiningAlg,
    /// Per-policy combining algorithm.
    pub policy_algorithm: CombiningAlg,
}

impl Default for PolicyShape {
    fn default() -> Self {
        PolicyShape {
            policies: 10,
            rules_per_policy: 5,
            root_algorithm: CombiningAlg::DenyOverrides,
            policy_algorithm: CombiningAlg::PermitOverrides,
        }
    }
}

/// Draws random policies in the analysable fragment over a
/// [`Vocabulary`].
#[derive(Debug)]
pub struct PolicyGenerator {
    vocab: Vocabulary,
    rng: StdRng,
}

impl PolicyGenerator {
    /// Creates a generator with a deterministic seed.
    #[must_use]
    pub fn new(vocab: Vocabulary, seed: u64) -> Self {
        PolicyGenerator {
            vocab,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn attr(category: Category, name: &str) -> Expr {
        Expr::attr(AttributeId::new(category, name))
    }

    fn random_match(&mut self) -> Expr {
        match self.rng.gen_range(0..4) {
            0 => {
                let role = self.vocab.roles[self.rng.gen_range(0..self.vocab.roles.len())].clone();
                Expr::equal(Self::attr(Category::Subject, "role"), Expr::lit(role))
            }
            1 => {
                let action =
                    self.vocab.actions[self.rng.gen_range(0..self.vocab.actions.len())].clone();
                Expr::equal(Self::attr(Category::Action, "id"), Expr::lit(action))
            }
            2 => {
                let rtype = self.vocab.resource_types
                    [self.rng.gen_range(0..self.vocab.resource_types.len())]
                .clone();
                Expr::equal(Self::attr(Category::Resource, "type"), Expr::lit(rtype))
            }
            _ => {
                let bound = self
                    .rng
                    .gen_range(self.vocab.hours.start + 1..self.vocab.hours.end);
                let op = if self.rng.gen_bool(0.5) {
                    Func::Less
                } else {
                    Func::GreaterEq
                };
                Expr::Apply(
                    op,
                    vec![Self::attr(Category::Environment, "hour"), Expr::lit(bound)],
                )
            }
        }
    }

    fn random_rule(&mut self, id: String) -> Rule {
        let effect = if self.rng.gen_bool(0.7) {
            Effect::Permit
        } else {
            Effect::Deny
        };
        let mut builder = Rule::builder(id, effect).target(Target::expr(self.random_match()));
        if self.rng.gen_bool(0.5) {
            let condition = if self.rng.gen_bool(0.5) {
                self.random_match()
            } else {
                Expr::and(vec![self.random_match(), self.random_match()])
            };
            builder = builder.condition(condition);
        }
        builder.build()
    }

    /// Draws one policy set of the requested shape. A final catch-all deny
    /// rule is appended to the last policy so generated policies are
    /// complete under the root algorithm.
    pub fn next_policy_set(&mut self, shape: &PolicyShape) -> PolicySet {
        let mut root = PolicySet::builder("generated-root", shape.root_algorithm);
        for p in 0..shape.policies {
            let mut policy = Policy::builder(format!("policy-{p}"), shape.policy_algorithm);
            // Target the policy at one resource type, so policies partition
            // the space roughly like real federations do.
            let rtype = self.vocab.resource_types[p % self.vocab.resource_types.len()].clone();
            policy = policy.target(Target::expr(Expr::equal(
                Self::attr(Category::Resource, "type"),
                Expr::lit(rtype),
            )));
            for r in 0..shape.rules_per_policy {
                policy = policy.rule(self.random_rule(format!("rule-{p}-{r}")));
            }
            if p == shape.policies - 1 {
                policy = policy.rule(Rule::always("catch-all-deny", Effect::Deny));
            }
            root = root.policy(policy.build());
        }
        root.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_matches_rate() {
        let arrivals = PoissonArrivals::with_rate_per_sec(100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| arrivals.next_gap(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // expected 10_000 µs; allow 3% tolerance
        assert!((mean - 10_000.0).abs() < 300.0, "mean {mean}");
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "counts {counts:?}");
        assert!(counts[0] > counts[9] * 3, "counts {counts:?}");
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((4_000..6_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn requests_cover_vocabulary() {
        let mut gen = RequestGenerator::new(Vocabulary::default(), 1.0, 4);
        for _ in 0..50 {
            let req = gen.next_request();
            assert_eq!(req.bag(Category::Subject, "role").len(), 1);
            assert_eq!(req.bag(Category::Action, "id").len(), 1);
            assert_eq!(req.bag(Category::Resource, "type").len(), 1);
            assert_eq!(req.bag(Category::Environment, "hour").len(), 1);
        }
    }

    #[test]
    fn generated_policies_have_requested_shape() {
        let mut gen = PolicyGenerator::new(Vocabulary::default(), 5);
        let shape = PolicyShape {
            policies: 7,
            rules_per_policy: 3,
            ..PolicyShape::default()
        };
        let set = gen.next_policy_set(&shape);
        assert_eq!(set.children.len(), 7);
        // last policy has the extra catch-all rule
        assert_eq!(set.rule_count(), 7 * 3 + 1);
    }

    #[test]
    fn generated_policies_are_analysable() {
        let mut gen = PolicyGenerator::new(Vocabulary::default(), 6);
        let set = gen.next_policy_set(&PolicyShape::default());
        // The whole point of the generator: its output stays inside the
        // analysable fragment.
        drams_analysis::constraint::compile_policy_set(&set).expect("analysable");
    }

    #[test]
    fn symbolic_witnesses_replay_concretely() {
        // The cross-validation loop: a permit witness found by the solver
        // must evaluate to Permit in the concrete engine, across seeds.
        use drams_policy::decision::Decision;
        for seed in 0..8 {
            let mut gen = PolicyGenerator::new(Vocabulary::default(), seed);
            let set = gen.next_policy_set(&PolicyShape {
                policies: 3,
                rules_per_policy: 3,
                ..PolicyShape::default()
            });
            if let Some(witness) = drams_analysis::can_permit(&set).expect("analysable") {
                let (d, _) = set.evaluate(&witness);
                assert_eq!(
                    d.to_decision(),
                    Decision::Permit,
                    "seed {seed}: witness {witness:?} policy {set:?}"
                );
            }
            if let Some(witness) = drams_analysis::can_deny(&set).expect("analysable") {
                let (d, _) = set.evaluate(&witness);
                assert_eq!(d.to_decision(), Decision::Deny, "seed {seed}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = RequestGenerator::new(Vocabulary::default(), 1.0, 9);
        let mut b = RequestGenerator::new(Vocabulary::default(), 1.0, 9);
        for _ in 0..10 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::with_rate_per_sec(0.0);
    }
}
