//! Deterministic worker-pool parallelism for pure-compute job batches.
//!
//! DRAMS is a federation of independent components, and most of its hot
//! work is embarrassingly parallel: Schnorr `batch_verify` chunks, SHA-256
//! digests, Merkle level hashing, DecisionVerifier re-evaluation and
//! compiled-PDP evaluation are all pure functions of their inputs. The DES
//! event loop, however, is single-threaded by design — byte-identical
//! replay is the invariant every oracle in this repo is built on.
//!
//! This module squares the two: [`map`] fans a slice of jobs out across
//! OS threads (`std::thread::scope`, zero dependencies) as contiguous
//! chunks, one chunk per worker, and concatenates the per-chunk results
//! **in chunk order** — which is submission order. The caller observes a
//! `Vec<R>` that is bit-for-bit identical to `items.iter().map(f)`, no
//! matter how many workers ran. `DRAMS_WORKERS=1` therefore produces the
//! same bytes as `DRAMS_WORKERS=8`, and every parallel call site stays
//! inside the deterministic-replay contract (DESIGN.md invariant 8).
//!
//! Worker count resolution, in priority order:
//! 1. [`set_workers`] — in-process override used by experiment sweeps and
//!    the worker-count determinism oracles;
//! 2. the `DRAMS_WORKERS` environment variable;
//! 3. `std::thread::available_parallelism()`, capped at [`MAX_WORKERS`].
//!
//! Jobs must be pure: they run off the event loop thread, so touching
//! shared mutable state (beyond internally synchronised counters such as
//! the PDP cache atomics) would reintroduce scheduling nondeterminism.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the worker count, however configured.
pub const MAX_WORKERS: usize = 64;

/// Sentinel meaning "not resolved yet" in [`WORKERS`].
const UNSET: usize = 0;

/// Resolved worker count; 0 until first use.
static WORKERS: AtomicUsize = AtomicUsize::new(UNSET);

// Marks threads that are themselves pool workers so nested `map` calls
// degrade to serial instead of multiplying threads.
thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn clamp(n: usize) -> usize {
    n.clamp(1, MAX_WORKERS)
}

fn resolve_default() -> usize {
    if let Ok(v) = std::env::var("DRAMS_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return clamp(n);
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Leave headroom past 8 on big hosts only via DRAMS_WORKERS; the hot
    // paths here stop scaling long before that.
    clamp(hw.min(8))
}

/// Current worker count (resolving `DRAMS_WORKERS` / host parallelism on
/// first use). Always >= 1; 1 means every [`map`] call runs serially on
/// the caller's thread.
pub fn workers() -> usize {
    let w = WORKERS.load(Ordering::Relaxed);
    if w != UNSET {
        return w;
    }
    let resolved = resolve_default();
    // Racing first calls resolve to the same value, so the winner of the
    // store does not matter.
    WORKERS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the worker count process-wide (clamped to `1..=MAX_WORKERS`).
///
/// Used by experiment sweeps (E15 runs the same workload at 1/2/4/8) and
/// the determinism oracles. Because every parallel call site is
/// byte-identical at any worker count, racing this against concurrent
/// work changes wall clock only, never output.
pub fn set_workers(n: usize) {
    WORKERS.store(clamp(n), Ordering::Relaxed);
}

/// Maps `f` over `items`, fanning contiguous chunks out across up to
/// [`workers`]`()` scoped threads, and returns the results **in
/// submission order** — bit-for-bit identical to a serial
/// `items.iter().map(f).collect()`.
///
/// Runs serially (no threads spawned) when the pool is sized 1, when
/// `items.len() < min_parallel`, or when called from inside another
/// `map` job (nested parallelism would oversubscribe without adding
/// determinism risk — results are order-merged either way).
///
/// `min_parallel` is the caller's amortisation threshold: thread spawn
/// costs ~tens of microseconds, so batches whose total work is smaller
/// than `workers * spawn_cost` should stay serial. Each call site picks
/// its own floor (documented in DESIGN.md's job-lane taxonomy).
pub fn map<T, R, F>(items: &[T], min_parallel: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let w = workers().min(items.len());
    if w <= 1 || items.len() < min_parallel || IN_WORKER.with(|c| c.get()) {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(w);
    let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(w);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    c.iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            // Re-raise worker panics on the caller thread so `should_panic`
            // tests and assertion failures behave as in the serial path.
            match h.join() {
                Ok(v) => per_chunk.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for v in per_chunk {
        out.extend(v);
    }
    out
}

/// Splits `0..len` into the same contiguous chunk ranges [`map`] uses,
/// for callers that need to know chunk boundaries (e.g. mapping a
/// per-chunk error index back to a global submission index).
pub fn chunk_ranges(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let w = workers.clamp(1, MAX_WORKERS).min(len.max(1));
    let chunk = len.div_ceil(w).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let saved = workers();
        set_workers(n);
        let r = f();
        set_workers(saved);
        r
    }

    #[test]
    fn map_matches_serial_at_every_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        for w in [1, 2, 3, 4, 8] {
            let got = with_workers(w, || map(&items, 0, |x| x.wrapping_mul(31) ^ 7));
            assert_eq!(got, expect, "workers={w}");
        }
    }

    #[test]
    fn map_preserves_submission_order_not_completion_order() {
        // Early items sleep longest: if results were merged by completion
        // order the output would be reversed.
        let items: Vec<u64> = (0..8).collect();
        let got = with_workers(4, || {
            map(&items, 0, |&x| {
                std::thread::sleep(std::time::Duration::from_millis(8 - x));
                x
            })
        });
        assert_eq!(got, items);
    }

    #[test]
    fn min_parallel_below_threshold_stays_serial_and_identical() {
        let items: Vec<u32> = (0..10).collect();
        let got = with_workers(8, || map(&items, 64, |x| x + 1));
        assert_eq!(got, (1..=10).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<u8> = vec![];
        assert!(with_workers(4, || map(&empty, 0, |x| *x)).is_empty());
        assert_eq!(with_workers(4, || map(&[9u8], 0, |x| *x)), vec![9]);
    }

    #[test]
    fn nested_map_degrades_to_serial() {
        let outer: Vec<u32> = (0..4).collect();
        let got = with_workers(4, || {
            map(&outer, 0, |&i| {
                let inner: Vec<u32> = (0..4).map(|j| i * 4 + j).collect();
                // Inner call must not spawn w^2 threads; it still must
                // return submission-order results.
                map(&inner, 0, |x| x * 2)
            })
        });
        let expect: Vec<Vec<u32>> = (0..4)
            .map(|i| (0..4).map(|j| (i * 4 + j) * 2).collect())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<u32> = (0..100).collect();
        let res = std::panic::catch_unwind(|| {
            with_workers(4, || {
                map(&items, 0, |&x| {
                    assert!(x != 57, "boom");
                    x
                })
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn chunk_ranges_cover_exactly_and_match_map_chunks() {
        for len in [0usize, 1, 7, 64, 1000] {
            for w in [1usize, 2, 4, 8] {
                let ranges = chunk_ranges(len, w);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= w.max(1));
            }
        }
    }

    #[test]
    fn set_workers_clamps() {
        with_workers(1, || {
            set_workers(0);
            assert_eq!(workers(), 1);
            set_workers(10_000);
            assert_eq!(workers(), MAX_WORKERS);
        });
    }
}
