//! The Policy Retrieval Point: versioned policy storage.
//!
//! The PRP lives with the PDP in the infrastructure tenant (paper Figure
//! 1). It keeps the full version history of the federation policy; the
//! DRAMS Analyser pins its authorised copy to a PRP version digest, which
//! is what makes unauthorised policy swaps at the PDP detectable.
//!
//! Every published version is **compiled once** at publication time
//! (`drams_policy::compiled`), so activating a version — including
//! rolling back to an old one — hands the PDP a ready-to-run
//! [`PreparedPolicySet`] instead of stalling the decision path on
//! recompilation.

use drams_crypto::sha256::Digest;
use drams_policy::compiled::PreparedPolicySet;
use drams_policy::pdp::Pdp;
use drams_policy::policy::PolicySet;
use std::sync::Arc;

/// One stored policy version.
#[derive(Debug, Clone)]
pub struct PolicyVersion {
    /// Monotonic version number (0-based).
    pub number: u64,
    /// Digest of the canonical encoding.
    pub digest: Digest,
    /// The policy itself.
    pub policy: PolicySet,
    /// The compiled form, built once at publication.
    pub prepared: Arc<PreparedPolicySet>,
}

impl PolicyVersion {
    /// Builds a PDP serving this version, reusing the compiled form.
    #[must_use]
    pub fn pdp(&self) -> Pdp {
        Pdp::from_prepared(self.policy.clone(), self.prepared.clone())
    }
}

/// A versioned policy store.
#[derive(Debug)]
pub struct Prp {
    versions: Vec<PolicyVersion>,
}

impl Prp {
    /// Creates a PRP with an initial policy (version 0).
    #[must_use]
    pub fn new(initial: PolicySet) -> Self {
        Prp {
            versions: vec![Self::version_entry(0, initial)],
        }
    }

    /// Publishes a new policy version; returns its version number.
    pub fn publish(&mut self, policy: PolicySet) -> u64 {
        let number = self.versions.len() as u64;
        self.versions.push(Self::version_entry(number, policy));
        number
    }

    fn version_entry(number: u64, policy: PolicySet) -> PolicyVersion {
        let prepared = Arc::new(PreparedPolicySet::compile(&policy));
        PolicyVersion {
            number,
            digest: prepared.version_digest(),
            policy,
            prepared,
        }
    }

    /// The active (latest) version.
    #[must_use]
    pub fn active(&self) -> &PolicyVersion {
        self.versions.last().expect("at least the initial version")
    }

    /// Looks a version up by number.
    #[must_use]
    pub fn version(&self, number: u64) -> Option<&PolicyVersion> {
        self.versions.get(number as usize)
    }

    /// Looks a version up by digest.
    #[must_use]
    pub fn by_digest(&self, digest: &Digest) -> Option<&PolicyVersion> {
        self.versions.iter().find(|v| v.digest == *digest)
    }

    /// Number of stored versions.
    #[must_use]
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::combining::CombiningAlg;
    use drams_policy::decision::Effect;
    use drams_policy::policy::Policy;
    use drams_policy::rule::Rule;

    fn policy(id: &str) -> PolicySet {
        PolicySet::builder(id, CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(Rule::always("r", Effect::Permit))
                    .build(),
            )
            .build()
    }

    #[test]
    fn initial_version_is_zero() {
        let prp = Prp::new(policy("v0"));
        assert_eq!(prp.active().number, 0);
        assert_eq!(prp.version_count(), 1);
    }

    #[test]
    fn publish_advances_active() {
        let mut prp = Prp::new(policy("v0"));
        let n = prp.publish(policy("v1"));
        assert_eq!(n, 1);
        assert_eq!(prp.active().number, 1);
        assert_eq!(prp.active().policy.id, "v1");
        // the old version stays retrievable
        assert_eq!(prp.version(0).unwrap().policy.id, "v0");
    }

    #[test]
    fn lookup_by_digest() {
        let mut prp = Prp::new(policy("v0"));
        prp.publish(policy("v1"));
        let digest = prp.version(0).unwrap().digest;
        assert_eq!(prp.by_digest(&digest).unwrap().number, 0);
        assert!(prp.by_digest(&Digest::of(b"nope")).is_none());
    }

    #[test]
    fn digests_track_policy_content() {
        let mut prp = Prp::new(policy("same"));
        prp.publish(policy("same"));
        // identical content ⇒ identical digest even across versions
        assert_eq!(
            prp.version(0).unwrap().digest,
            prp.version(1).unwrap().digest
        );
        prp.publish(policy("different"));
        assert_ne!(
            prp.version(0).unwrap().digest,
            prp.version(2).unwrap().digest
        );
    }

    #[test]
    fn versions_are_precompiled_and_serve_pdps() {
        use drams_policy::attr::Request;
        let mut prp = Prp::new(policy("v0"));
        prp.publish(policy("v1"));
        for v in 0..2 {
            let version = prp.version(v).unwrap();
            assert_eq!(version.prepared.version_digest(), version.digest);
            let pdp = version.pdp();
            assert_eq!(pdp.policy_version(), version.digest);
            assert!(pdp.evaluate(&Request::new()).is_permit());
        }
    }
}
