//! FaaS cloud-federation substrate.
//!
//! The deployment context of DRAMS (paper §I and Figure 1):
//! Federation-as-a-Service deploys an XACML access control system across a
//! cloud federation — the PDP and policy management live in the jointly
//! owned *infrastructure tenant*, PEPs guard the edge of every member
//! tenant. This crate models that world:
//!
//! * [`model`] — clouds, tenants, sections, PEP placement, link latencies.
//! * [`msg`] — the request/response envelopes whose canonical digests the
//!   DRAMS probes log.
//! * [`pep`] — Policy Enforcement Points with deny/permit-biased
//!   enforcement.
//! * [`prp`] — the versioned Policy Retrieval Point.
//! * [`des`] — a deterministic virtual-time discrete-event engine; all
//!   latency experiments run on it.
//! * [`fault`] — a deterministic per-link network fault plane (drop,
//!   duplicate, reorder, delay, timed partitions) the runtime's net shim
//!   applies between services.
//! * [`par`] — a deterministic worker pool for pure-compute job batches
//!   (signature verification, hashing, policy re-evaluation); results are
//!   merged in submission order so output is worker-count invisible.
//! * [`transport`] — the pluggable carrier for wire messages: the DES
//!   identity backend (the conformance oracle) and the frame format the
//!   TCP backend in `drams-net` puts on real sockets.
//! * [`workload`] — Poisson arrivals, Zipf popularity, request and policy
//!   generators shared by experiments and property tests.

#![warn(missing_docs)]

pub mod des;
pub mod fault;
pub mod model;
pub mod msg;
pub mod par;
pub mod pep;
pub mod prp;
pub mod transport;
pub mod workload;

pub use des::{
    EventQueue, LatencyStats, Outbox, ServiceRuntime, SimService, SimTime, StatsReport, MICRO,
    MILLIS, SECONDS,
};
pub use fault::{FaultPlan, FaultPlane, FaultStats, LinkFault, PartitionWindow, Site};
pub use model::{CloudId, FederationSpec, LatencyModel, PepId, TenantId, TenantSpec};
pub use msg::{CorrelationId, RequestEnvelope, ResponseEnvelope};
pub use pep::{Enforcement, EnforcementBias, Pep};
pub use prp::{PolicyVersion, Prp};
pub use transport::{DesTransport, Transport, TransportError, WireFrame, WireRole};
pub use workload::{
    PoissonArrivals, PolicyGenerator, PolicyShape, RequestGenerator, Vocabulary, Zipf,
};
