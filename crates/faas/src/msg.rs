//! Message envelopes exchanged between PEPs and the PDP.
//!
//! DRAMS probes hash exactly these envelopes: the monitor contract
//! compares the digest of what the PEP sent with the digest of what the
//! PDP received (and symmetrically for responses), so the envelopes'
//! canonical encodings are the ground truth for tamper detection.

use crate::des::SimTime;
use crate::model::{PepId, TenantId};
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::sha256::Digest;
use drams_crypto::CryptoError;
use drams_policy::attr::Request;
use drams_policy::decision::Response;
use serde::{Deserialize, Serialize};

/// Correlates the four observation points of one access transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CorrelationId(pub u64);

impl std::fmt::Display for CorrelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corr-{}", self.0)
    }
}

/// An access request on the wire between a PEP and the PDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Correlation id assigned by the intercepting PEP.
    pub correlation: CorrelationId,
    /// The originating tenant.
    pub tenant: TenantId,
    /// The PEP that intercepted the request.
    pub pep: PepId,
    /// The target service.
    pub service: String,
    /// The XACML request.
    pub request: Request,
    /// Virtual time the subject issued the request.
    pub issued_at: SimTime,
}

impl RequestEnvelope {
    /// The digest probes log for this envelope.
    #[must_use]
    pub fn digest(&self) -> Digest {
        self.canonical_digest()
    }
}

impl Encode for RequestEnvelope {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.correlation.0);
        w.put_u32(self.tenant.0);
        w.put_u32(self.pep.0);
        w.put_str(&self.service);
        self.request.encode(w);
        w.put_u64(self.issued_at);
    }
}

impl Decode for RequestEnvelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(RequestEnvelope {
            correlation: CorrelationId(r.get_u64()?),
            tenant: TenantId(r.get_u32()?),
            pep: PepId(r.get_u32()?),
            service: r.get_str()?,
            request: Request::decode(r)?,
            issued_at: r.get_u64()?,
        })
    }
}

/// An access decision on the wire between the PDP and a PEP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Correlation id copied from the request.
    pub correlation: CorrelationId,
    /// The PEP the decision is addressed to.
    pub pep: PepId,
    /// The PDP's response.
    pub response: Response,
    /// Digest of the policy version the PDP evaluated.
    pub policy_version: Digest,
    /// Virtual time the PDP produced the decision.
    pub decided_at: SimTime,
}

impl ResponseEnvelope {
    /// The digest probes log for this envelope.
    #[must_use]
    pub fn digest(&self) -> Digest {
        self.canonical_digest()
    }
}

impl Encode for ResponseEnvelope {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.correlation.0);
        w.put_u32(self.pep.0);
        self.response.encode(w);
        self.policy_version.encode(w);
        w.put_u64(self.decided_at);
    }
}

impl Decode for ResponseEnvelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Ok(ResponseEnvelope {
            correlation: CorrelationId(r.get_u64()?),
            pep: PepId(r.get_u32()?),
            response: Response::decode(r)?,
            policy_version: Digest::decode(r)?,
            decided_at: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::decision::ExtDecision;

    fn request_env() -> RequestEnvelope {
        RequestEnvelope {
            correlation: CorrelationId(7),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc-1-0".into(),
            request: Request::builder().subject("role", "doctor").build(),
            issued_at: 1_000,
        }
    }

    #[test]
    fn request_envelope_round_trip() {
        let env = request_env();
        let bytes = env.to_canonical_bytes();
        assert_eq!(RequestEnvelope::from_canonical_bytes(&bytes).unwrap(), env);
    }

    #[test]
    fn response_envelope_round_trip() {
        let env = ResponseEnvelope {
            correlation: CorrelationId(7),
            pep: PepId(1),
            response: Response::new(ExtDecision::Permit, vec![]),
            policy_version: Digest::of(b"policy-v1"),
            decided_at: 2_000,
        };
        let bytes = env.to_canonical_bytes();
        assert_eq!(ResponseEnvelope::from_canonical_bytes(&bytes).unwrap(), env);
    }

    #[test]
    fn any_tampering_changes_digest() {
        let base = request_env();
        let d0 = base.digest();
        let mut changed = base.clone();
        changed.request = Request::builder().subject("role", "admin").build();
        assert_ne!(changed.digest(), d0);
        let mut changed = base.clone();
        changed.service = "other".into();
        assert_ne!(changed.digest(), d0);
        let mut changed = base;
        changed.correlation = CorrelationId(8);
        assert_ne!(changed.digest(), d0);
    }
}
