//! A small deterministic discrete-event simulation engine.
//!
//! Virtual time is measured in microseconds. Events are totally ordered by
//! `(time, insertion sequence)`, so runs are reproducible given a seed —
//! every latency/throughput number in the DRAMS experiments comes out of
//! this engine and is exactly repeatable.
//!
//! Besides the raw [`EventQueue`], the module offers an actor-style layer:
//! a [`SimService`] handles one typed event at a time and emits follow-up
//! events through an [`Outbox`]; a [`ServiceRuntime`] owns the services
//! and routes every popped event to exactly one of them. Services share no
//! state except an application-defined context, so a simulation is the sum
//! of its services plus the typed events on the wire between them.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// One microsecond.
pub const MICRO: SimTime = 1;
/// One millisecond in [`SimTime`] units.
pub const MILLIS: SimTime = 1_000;
/// One second in [`SimTime`] units.
pub const SECONDS: SimTime = 1_000_000;

/// A deterministic event queue over an application-defined event type.
///
/// # Example
///
/// ```
/// use drams_faas::des::{EventQueue, MILLIS};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut q = EventQueue::new();
/// q.schedule(2 * MILLIS, Ev::Pong);
/// q.schedule(1 * MILLIS, Ev::Ping);
/// assert_eq!(q.pop().unwrap().1, Ev::Ping);
/// assert_eq!(q.now(), MILLIS);
/// assert_eq!(q.pop().unwrap().1, Ev::Pong);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at an absolute virtual time (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
    }

    /// Pops the next event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, slot)) = self.heap.pop()?;
        self.now = at;
        let event = self.slots[slot].take().expect("slot filled when scheduled");
        self.free.push(slot);
        Some((at, event))
    }

    /// Peeks at the next event without popping it or advancing time.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        let Reverse((at, _, slot)) = self.heap.peek()?;
        let event = self.slots[*slot]
            .as_ref()
            .expect("slot filled when scheduled");
        Some((*at, event))
    }

    /// Pops the next event only if it fires at or before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Follow-up events emitted by a [`SimService`] while handling one event,
/// plus the service's view of the run's soft deadline.
///
/// The deadline models drain phases: once a source of load decides the run
/// should wind down, it sets the deadline and periodic services stop
/// rescheduling their ticks past it.
#[derive(Debug)]
pub struct Outbox<M> {
    emitted: Vec<(SimTime, M)>,
    deadline: Option<SimTime>,
}

impl<M> Outbox<M> {
    fn new(deadline: Option<SimTime>) -> Self {
        Outbox {
            emitted: Vec::new(),
            deadline,
        }
    }

    /// Emits `msg` to fire `delay` after the event being handled.
    ///
    /// Emissions keep their order: two messages emitted with equal target
    /// times are delivered in emission order (the queue's FIFO tie-break).
    pub fn emit(&mut self, delay: SimTime, msg: M) {
        self.emitted.push((delay, msg));
    }

    /// The run's current soft deadline, if one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// Sets the run's soft deadline (e.g. when the workload is exhausted
    /// and the run should drain). An earlier existing deadline wins.
    pub fn set_deadline(&mut self, at: SimTime) {
        self.deadline = Some(self.deadline.map_or(at, |d| d.min(at)));
    }

    /// Whether a periodic service should reschedule its tick: true until
    /// the deadline (if any) has passed.
    #[must_use]
    pub fn within_deadline(&self, now: SimTime) -> bool {
        self.deadline.is_none_or(|d| now <= d)
    }
}

/// An actor in a [`ServiceRuntime`]: handles one typed event at a time
/// and communicates with other services only by emitting further events.
///
/// `C` is the shared simulation context (measurement sinks, substrate
/// resources); everything *between* services travels as an `M`.
pub trait SimService<M, C> {
    /// Handles one event addressed to this service.
    fn handle(&mut self, now: SimTime, msg: M, ctx: &mut C, out: &mut Outbox<M>);

    /// Classifies a message into an independent compute lane (e.g. the
    /// per-cloud PDP slot it addresses), or `None` for messages that must
    /// be handled strictly one at a time.
    ///
    /// When consecutive queue events share a timestamp, route to the same
    /// service, and sit on **pairwise distinct** lanes, the runtime groups
    /// them into a batch: [`prepare_batch`](Self::prepare_batch) runs once
    /// over the whole batch, then each event is handled serially in
    /// canonical queue order. Lanes must be genuinely independent —
    /// handling one event may not change how another lane's event is
    /// handled.
    fn lane_of(&self, _msg: &M) -> Option<u64> {
        None
    }

    /// Hook called once before a lane batch is handled (see
    /// [`lane_of`](Self::lane_of)); `msgs` is the batch in canonical queue
    /// order. Implementations typically fan pure per-lane computation out
    /// across [`crate::par`] workers and cache the results for
    /// [`handle`](Self::handle) to consume. Must not change observable
    /// behaviour: handling must produce identical bytes whether or not
    /// this ran (the default is a no-op).
    fn prepare_batch(&mut self, _now: SimTime, _msgs: &[&M], _ctx: &mut C) {}
}

/// A network shim interposed between every service emission and the
/// event queue. It receives the shared context, the current virtual
/// time, the emission's `(delay, msg)` pair, and a sink; it pushes zero
/// or more `(delay, msg)` deliveries into the sink (zero = dropped, two
/// = duplicated, altered delays = network delay/reorder). The fault
/// plane plugs in here — see [`crate::fault`].
pub type NetShim<M, C> = Box<dyn FnMut(&mut C, SimTime, SimTime, M, &mut Vec<(SimTime, M)>)>;

/// Owns a set of [`SimService`]s and a routing function, and drives them
/// from one deterministic [`EventQueue`].
///
/// Every message type maps to exactly one service (the router returns the
/// service's registration index), so the event taxonomy *is* the service
/// graph: an edge exists where one service emits a message routed to
/// another.
pub struct ServiceRuntime<M, C> {
    queue: EventQueue<M>,
    services: Vec<Box<dyn SimService<M, C>>>,
    router: fn(&M) -> usize,
    deadline: Option<SimTime>,
    net_shim: Option<NetShim<M, C>>,
    shim_buf: Vec<(SimTime, M)>,
}

impl<M, C> std::fmt::Debug for ServiceRuntime<M, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRuntime")
            .field("services", &self.services.len())
            .field("pending", &self.queue.len())
            .field("deadline", &self.deadline)
            .field("net_shim", &self.net_shim.is_some())
            .finish()
    }
}

impl<M, C> ServiceRuntime<M, C> {
    /// Creates an empty runtime with the given message router.
    #[must_use]
    pub fn new(router: fn(&M) -> usize) -> Self {
        ServiceRuntime {
            queue: EventQueue::new(),
            services: Vec::new(),
            router,
            deadline: None,
            net_shim: None,
            shim_buf: Vec::new(),
        }
    }

    /// Installs a [`NetShim`] through which every *service-emitted*
    /// message passes before being scheduled. Initial events injected via
    /// [`schedule`](Self::schedule)/[`schedule_at`](Self::schedule_at)
    /// bypass the shim (they model local bootstrap, not network traffic).
    pub fn set_net_shim(&mut self, shim: NetShim<M, C>) {
        self.net_shim = Some(shim);
    }

    /// Registers a service, returning the index the router must use to
    /// address it.
    pub fn register(&mut self, service: Box<dyn SimService<M, C>>) -> usize {
        self.services.push(service);
        self.services.len() - 1
    }

    /// Schedules an initial event `delay` after the current virtual time.
    pub fn schedule(&mut self, delay: SimTime, msg: M) {
        self.queue.schedule(delay, msg);
    }

    /// Schedules an initial event at an absolute virtual time.
    pub fn schedule_at(&mut self, at: SimTime, msg: M) {
        self.queue.schedule_at(at, msg);
    }

    /// Runs until the queue drains, `horizon` passes, or a service-set
    /// deadline passes. Returns the virtual time of the last handled
    /// event.
    ///
    /// # Panics
    ///
    /// Panics when the router returns an index with no registered service
    /// — a routing-table bug, not a recoverable condition.
    pub fn run(&mut self, ctx: &mut C, horizon: SimTime) -> SimTime {
        let mut finished_at = 0;
        let mut batch: Vec<M> = Vec::new();
        let mut lanes: Vec<u64> = Vec::new();
        while let Some((now, msg)) = self.queue.pop() {
            if now > horizon {
                break;
            }
            if let Some(deadline) = self.deadline {
                if now > deadline {
                    break;
                }
            }
            let target = (self.router)(&msg);
            assert!(
                target < self.services.len(),
                "router addressed service {target} but only {} are registered",
                self.services.len()
            );
            let Some(first_lane) = self.services[target].lane_of(&msg) else {
                self.dispatch(target, now, msg, ctx);
                finished_at = now;
                continue;
            };

            // Lane batching: absorb the run of consecutive events that
            // share this timestamp, route to the same service, and sit on
            // pairwise-distinct lanes. Restricting the batch to a single
            // timestamp is what keeps it safe: any emission from handling
            // a batch member gets a larger insertion sequence than every
            // already-queued event, so it sorts *after* the whole batch
            // even at zero delay — no event that batching pulls forward
            // could have been influenced by a batch member's handler.
            batch.clear();
            lanes.clear();
            batch.push(msg);
            lanes.push(first_lane);
            loop {
                let lane = match self.queue.peek() {
                    Some((at, next)) if at == now && (self.router)(next) == target => {
                        match self.services[target].lane_of(next) {
                            Some(l) if !lanes.contains(&l) => l,
                            _ => break,
                        }
                    }
                    _ => break,
                };
                let (_, next) = self.queue.pop().expect("peeked event present");
                batch.push(next);
                lanes.push(lane);
            }
            if batch.len() > 1 {
                let refs: Vec<&M> = batch.iter().collect();
                self.services[target].prepare_batch(now, &refs, ctx);
            }
            let mut past_deadline = false;
            for msg in batch.drain(..) {
                // Mirror the pop-time deadline check between batch members:
                // a handler that pulls the deadline before `now` ends the
                // run exactly as it would have in unbatched order.
                if self.deadline.is_some_and(|d| now > d) {
                    past_deadline = true;
                    break;
                }
                self.dispatch(target, now, msg, ctx);
                finished_at = now;
            }
            if past_deadline {
                break;
            }
        }
        finished_at
    }

    /// Handles one routed event: outbox, handler, net shim, scheduling.
    fn dispatch(&mut self, target: usize, now: SimTime, msg: M, ctx: &mut C) {
        let mut out = Outbox::new(self.deadline);
        self.services[target].handle(now, msg, ctx, &mut out);
        self.deadline = out.deadline;
        match self.net_shim.as_mut() {
            Some(shim) => {
                for (delay, msg) in out.emitted {
                    shim(ctx, now, delay, msg, &mut self.shim_buf);
                }
                for (delay, msg) in self.shim_buf.drain(..) {
                    self.queue.schedule(delay, msg);
                }
            }
            None => {
                for (delay, msg) in out.emitted {
                    self.queue.schedule(delay, msg);
                }
            }
        }
    }
}

/// Number of buckets in the delivery-attempt histogram: bucket `i`
/// counts messages that needed `i + 1` delivery attempts; the last
/// bucket aggregates everything at or beyond `ATTEMPT_BUCKETS`.
pub const ATTEMPT_BUCKETS: usize = 8;

/// Immutable summary of a latency series, for services and reports that
/// log several percentiles without needing `&mut` access.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsReport {
    /// Number of samples.
    pub count: usize,
    /// Mean in [`SimTime`] units.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Largest sample.
    pub max: SimTime,
    /// Total retries (delivery attempts beyond the first) across all
    /// messages whose attempt counts were recorded.
    pub retries: u64,
    /// Delivery-attempt histogram; see [`ATTEMPT_BUCKETS`].
    pub attempts: [u64; ATTEMPT_BUCKETS],
}

/// Online mean/percentile accumulator for latency series.
///
/// Stores all samples (experiments are bounded), so percentiles are exact.
/// Percentile queries take `&self`: the sort happens lazily at most once
/// per batch of recordings, behind a cached `sorted` flag.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: RefCell<Vec<SimTime>>,
    sorted: Cell<bool>,
    retries: u64,
    attempts: [u64; ATTEMPT_BUCKETS],
}

impl LatencyStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimTime) {
        self.samples.get_mut().push(sample);
        self.sorted.set(false);
    }

    /// Records how many delivery attempts one message needed (1 = no
    /// retry). Feeds the retry total and attempt histogram in
    /// [`StatsReport`], alongside — but independent of — the latency
    /// samples.
    pub fn record_attempts(&mut self, attempts: u32) {
        let attempts = attempts.max(1);
        self.retries += u64::from(attempts - 1);
        self.attempts[(attempts as usize - 1).min(ATTEMPT_BUCKETS - 1)] += 1;
    }

    /// Total retries recorded via [`record_attempts`](Self::record_attempts).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The delivery-attempt histogram; see [`ATTEMPT_BUCKETS`].
    #[must_use]
    pub fn attempts_histogram(&self) -> [u64; ATTEMPT_BUCKETS] {
        self.attempts
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.borrow().len()
    }

    /// True when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.borrow().is_empty()
    }

    /// Mean in [`SimTime`] units (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let samples = self.samples.borrow();
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    }

    fn ensure_sorted(&self) {
        if !self.sorted.get() {
            self.samples.borrow_mut().sort_unstable();
            self.sorted.set(true);
        }
    }

    /// Exact percentile (`p` in 0..=100); 0 when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> SimTime {
        self.ensure_sorted();
        let samples = self.samples.borrow();
        if samples.is_empty() {
            return 0;
        }
        // Nearest-rank percentile: the smallest value with at least p% of
        // samples at or below it.
        let n = samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        samples[rank.saturating_sub(1).min(n - 1)]
    }

    /// Maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> SimTime {
        self.samples.borrow().iter().copied().max().unwrap_or(0)
    }

    /// Immutable snapshot of the whole series (one sort, all quantiles).
    #[must_use]
    pub fn report(&self) -> StatsReport {
        StatsReport {
            count: self.len(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            max: self.max(),
            retries: self.retries,
            attempts: self.attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.schedule(10, "b");
        q.schedule(10, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop().unwrap(), (10, 1));
        assert_eq!(q.pop().unwrap(), (20, 2));
        assert_eq!(q.pop().unwrap(), (30, 3));
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        // schedule is relative to the new now
        q.schedule(5, ());
        assert_eq!(q.pop().unwrap().0, 10);
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(100, "later");
        assert!(q.pop_before(50).is_none());
        assert_eq!(q.pop_before(100).unwrap().1, "later");
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.pop();
        q.schedule_at(3, "past"); // in the past: clamped to now = 10
        assert_eq!(q.pop().unwrap().0, 10);
    }

    #[test]
    fn slot_reuse_does_not_corrupt() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(i, i);
        }
        for _ in 0..50 {
            q.pop();
        }
        for i in 100..200 {
            q.schedule_at(i, i);
        }
        let mut last = 0;
        while let Some((t, v)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(t, v);
        }
    }

    #[test]
    fn latency_stats_percentiles() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        assert_eq!(s.len(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(50.0), 50);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.max(), 100);
    }

    #[test]
    fn latency_stats_empty_is_zeroes() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0);
        assert_eq!(s.max(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn percentile_is_immutable_and_record_resorts() {
        let mut s = LatencyStats::new();
        for v in [30u64, 10, 20] {
            s.record(v);
        }
        // Multiple percentile queries through a shared reference.
        let shared: &LatencyStats = &s;
        assert_eq!(shared.percentile(50.0), 20);
        assert_eq!(shared.percentile(100.0), 30);
        // Recording after a sorted query invalidates the cache.
        s.record(5);
        assert_eq!(s.percentile(0.0), 5);
    }

    #[test]
    fn report_snapshot_matches_point_queries() {
        let mut s = LatencyStats::new();
        for v in 1..=200u64 {
            s.record(v);
        }
        let r = s.report();
        assert_eq!(r.count, 200);
        assert_eq!(r.p50, s.percentile(50.0));
        assert_eq!(r.p95, s.percentile(95.0));
        assert_eq!(r.p99, s.percentile(99.0));
        assert_eq!(r.max, 200);
        assert!((r.mean - s.mean()).abs() < 1e-9);
    }

    // --- service runtime -------------------------------------------------

    /// Two-service ping/pong over the runtime: each message carries the
    /// sender's log so the test can assert exact interleaving.
    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        log: Vec<(SimTime, u32)>,
    }

    impl SimService<Msg, Vec<String>> for Pinger {
        fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Vec<String>, out: &mut Outbox<Msg>) {
            if let Msg::Pong(n) = msg {
                self.log.push((now, n));
                ctx.push(format!("pong {n} at {now}"));
                if n < 3 {
                    out.emit(10, Msg::Ping(n + 1));
                }
            }
        }
    }

    struct Ponger;

    impl SimService<Msg, Vec<String>> for Ponger {
        fn handle(
            &mut self,
            _now: SimTime,
            msg: Msg,
            ctx: &mut Vec<String>,
            out: &mut Outbox<Msg>,
        ) {
            if let Msg::Ping(n) = msg {
                ctx.push(format!("ping {n}"));
                out.emit(5, Msg::Pong(n));
            }
        }
    }

    fn route(msg: &Msg) -> usize {
        match msg {
            Msg::Pong(_) => 0,
            Msg::Ping(_) => 1,
        }
    }

    #[test]
    fn services_exchange_typed_events() {
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(route);
        let pinger = rt.register(Box::new(Pinger { log: Vec::new() }));
        assert_eq!(pinger, 0);
        rt.register(Box::new(Ponger));
        rt.schedule(0, Msg::Ping(1));
        let mut ctx = Vec::new();
        let finished = rt.run(&mut ctx, 1_000);
        assert_eq!(
            ctx,
            [
                "ping 1",
                "pong 1 at 5",
                "ping 2",
                "pong 2 at 20",
                "ping 3",
                "pong 3 at 35"
            ]
        );
        assert_eq!(finished, 35);
    }

    #[test]
    fn equal_timestamp_events_dispatch_in_emission_order() {
        // One service fans out three zero-delay events to another; the
        // receiver must see them in emission order — the FIFO tie-break
        // holds across services, not just within one queue user.
        struct Fan;
        struct Sink;
        impl SimService<Msg, Vec<String>> for Fan {
            fn handle(
                &mut self,
                _n: SimTime,
                _m: Msg,
                _c: &mut Vec<String>,
                out: &mut Outbox<Msg>,
            ) {
                out.emit(0, Msg::Ping(1));
                out.emit(0, Msg::Ping(2));
                out.emit(0, Msg::Ping(3));
            }
        }
        impl SimService<Msg, Vec<String>> for Sink {
            fn handle(
                &mut self,
                now: SimTime,
                m: Msg,
                ctx: &mut Vec<String>,
                _o: &mut Outbox<Msg>,
            ) {
                if let Msg::Ping(n) = m {
                    ctx.push(format!("{n}@{now}"));
                }
            }
        }
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(route);
        rt.register(Box::new(Fan)); // index 0: receives Pong
        rt.register(Box::new(Sink)); // index 1: receives Ping
        rt.schedule(7, Msg::Pong(0));
        let mut ctx = Vec::new();
        rt.run(&mut ctx, 1_000);
        assert_eq!(ctx, ["1@7", "2@7", "3@7"]);
    }

    #[test]
    fn deadline_stops_the_run_and_earlier_deadline_wins() {
        struct Stopper;
        impl SimService<Msg, Vec<String>> for Stopper {
            fn handle(
                &mut self,
                now: SimTime,
                m: Msg,
                ctx: &mut Vec<String>,
                out: &mut Outbox<Msg>,
            ) {
                if let Msg::Ping(n) = m {
                    ctx.push(format!("{n}"));
                    if n == 1 {
                        out.set_deadline(now + 20);
                        out.set_deadline(now + 50); // later: must not extend
                        assert_eq!(out.deadline(), Some(now + 20));
                    }
                    if out.within_deadline(now) {
                        out.emit(15, Msg::Ping(n + 1));
                    }
                }
            }
        }
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(|_| 0);
        rt.register(Box::new(Stopper));
        rt.schedule(0, Msg::Ping(1));
        let mut ctx = Vec::new();
        // Pings at 0, 15, 30… — deadline 20 admits the ping at 15, then
        // the one at 30 pops past the deadline and the run stops.
        rt.run(&mut ctx, 1_000);
        assert_eq!(ctx, ["1", "2"]);
    }

    #[test]
    fn record_attempts_builds_retry_totals_and_histogram() {
        let mut s = LatencyStats::new();
        s.record_attempts(1); // no retry
        s.record_attempts(1);
        s.record_attempts(3); // two retries
        s.record_attempts(20); // clamps into the last bucket
        assert_eq!(s.retries(), 0 + 0 + 2 + 19);
        let hist = s.attempts_histogram();
        assert_eq!(hist[0], 2);
        assert_eq!(hist[2], 1);
        assert_eq!(hist[ATTEMPT_BUCKETS - 1], 1);
        let r = s.report();
        assert_eq!(r.retries, 21);
        assert_eq!(r.attempts, hist);
        // Attempt counts are independent of latency samples.
        assert_eq!(r.count, 0);
    }

    #[test]
    fn net_shim_can_drop_duplicate_and_delay_emissions() {
        // Pinger emits Ping(n); the shim drops Ping(2), duplicates
        // Ping(1) and delays Ping(3) by 100. Initial schedule() calls
        // bypass the shim entirely.
        struct Echo;
        impl SimService<Msg, Vec<String>> for Echo {
            fn handle(
                &mut self,
                now: SimTime,
                m: Msg,
                ctx: &mut Vec<String>,
                out: &mut Outbox<Msg>,
            ) {
                match m {
                    Msg::Pong(n) => out.emit(10, Msg::Ping(n)),
                    Msg::Ping(n) => ctx.push(format!("{n}@{now}")),
                }
            }
        }
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(|_| 0);
        rt.register(Box::new(Echo));
        rt.set_net_shim(Box::new(|_ctx, _now, delay, msg, sink| match msg {
            Msg::Ping(1) => {
                sink.push((delay, Msg::Ping(1)));
                sink.push((delay, Msg::Ping(1)));
            }
            Msg::Ping(2) => {}
            Msg::Ping(3) => sink.push((delay + 100, Msg::Ping(3))),
            other => sink.push((delay, other)),
        }));
        // A Ping injected directly must NOT pass through the shim.
        rt.schedule(0, Msg::Ping(2));
        rt.schedule(0, Msg::Pong(1));
        rt.schedule(0, Msg::Pong(2));
        rt.schedule(0, Msg::Pong(3));
        let mut ctx = Vec::new();
        rt.run(&mut ctx, 1_000);
        assert_eq!(ctx, ["2@0", "1@10", "1@10", "3@110"]);
    }

    #[test]
    #[should_panic(expected = "router addressed service")]
    fn routing_to_unregistered_service_panics() {
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(|_| 5);
        rt.register(Box::new(Ponger));
        rt.schedule(0, Msg::Ping(1));
        rt.run(&mut Vec::new(), 100);
    }

    // --- lane batching ---------------------------------------------------

    /// Laned sink: `Ping(n)` sits on lane `n % 4`. `prepare_batch` caches
    /// a doubled value per message; `handle` consumes the cache when
    /// present (and logs whether it did), falling back to computing
    /// inline — so the test can observe exactly which events batched.
    struct Laned {
        prepared: Vec<(u32, u32)>,
    }

    impl SimService<Msg, Vec<String>> for Laned {
        fn handle(&mut self, now: SimTime, m: Msg, ctx: &mut Vec<String>, _o: &mut Outbox<Msg>) {
            if let Msg::Ping(n) = m {
                let cached = self
                    .prepared
                    .iter()
                    .position(|&(k, _)| k == n)
                    .map(|i| self.prepared.remove(i).1);
                let (v, how) = match cached {
                    Some(v) => (v, "batched"),
                    None => (n * 2, "solo"),
                };
                ctx.push(format!("{n}->{v} {how}@{now}"));
            }
        }

        fn lane_of(&self, msg: &Msg) -> Option<u64> {
            match msg {
                Msg::Ping(n) => Some(u64::from(n % 4)),
                Msg::Pong(_) => None,
            }
        }

        fn prepare_batch(&mut self, _now: SimTime, msgs: &[&Msg], _ctx: &mut Vec<String>) {
            for m in msgs {
                if let Msg::Ping(n) = m {
                    self.prepared.push((*n, n * 2));
                }
            }
        }
    }

    #[test]
    fn same_timestamp_distinct_lanes_batch_and_keep_canonical_order() {
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(|_| 0);
        rt.register(Box::new(Laned {
            prepared: Vec::new(),
        }));
        // 1, 2, 3 share t=10 on distinct lanes -> one batch, handled in
        // FIFO order. 5 repeats lane 1 -> ends that batch and opens a
        // second one with 6 (lane 2 is distinct again).
        for n in [1u32, 2, 3, 5, 6] {
            rt.schedule(10, Msg::Ping(n));
        }
        // Different timestamp never joins a batch even on a fresh lane
        // (and a batch of one is never "prepared").
        rt.schedule(20, Msg::Ping(7));
        let mut ctx = Vec::new();
        rt.run(&mut ctx, 1_000);
        assert_eq!(
            ctx,
            [
                "1->2 batched@10",
                "2->4 batched@10",
                "3->6 batched@10",
                "5->10 batched@10",
                "6->12 batched@10",
                "7->14 solo@20"
            ]
        );
    }

    #[test]
    fn unlaned_message_interrupts_batching() {
        struct LanedOrNot(Laned);
        impl SimService<Msg, Vec<String>> for LanedOrNot {
            fn handle(&mut self, now: SimTime, m: Msg, ctx: &mut Vec<String>, o: &mut Outbox<Msg>) {
                if let Msg::Pong(n) = m {
                    ctx.push(format!("pong {n}@{now}"));
                } else {
                    self.0.handle(now, m, ctx, o);
                }
            }
            fn lane_of(&self, msg: &Msg) -> Option<u64> {
                self.0.lane_of(msg)
            }
            fn prepare_batch(&mut self, now: SimTime, msgs: &[&Msg], ctx: &mut Vec<String>) {
                self.0.prepare_batch(now, msgs, ctx);
            }
        }
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(|_| 0);
        rt.register(Box::new(LanedOrNot(Laned {
            prepared: Vec::new(),
        })));
        rt.schedule(10, Msg::Ping(1));
        rt.schedule(10, Msg::Pong(9)); // lane None: splits the run
        rt.schedule(10, Msg::Ping(2));
        let mut ctx = Vec::new();
        rt.run(&mut ctx, 1_000);
        // Neither Ping batches (each run of laned events has length 1),
        // and order stays canonical.
        assert_eq!(ctx, ["1->2 solo@10", "pong 9@10", "2->4 solo@10"]);
    }

    #[test]
    fn batch_member_emissions_sort_after_the_whole_batch() {
        // A laned service whose handler emits a zero-delay follow-up: the
        // follow-up must be handled after every member of the current
        // batch, exactly as in unbatched FIFO order.
        struct EmitOnce {
            emitted: bool,
        }
        impl SimService<Msg, Vec<String>> for EmitOnce {
            fn handle(
                &mut self,
                now: SimTime,
                m: Msg,
                ctx: &mut Vec<String>,
                out: &mut Outbox<Msg>,
            ) {
                match m {
                    Msg::Ping(n) => {
                        ctx.push(format!("ping {n}@{now}"));
                        if !self.emitted {
                            self.emitted = true;
                            out.emit(0, Msg::Pong(n));
                        }
                    }
                    Msg::Pong(n) => ctx.push(format!("pong {n}@{now}")),
                }
            }
            fn lane_of(&self, msg: &Msg) -> Option<u64> {
                match msg {
                    Msg::Ping(n) => Some(u64::from(*n)),
                    Msg::Pong(_) => None,
                }
            }
        }
        let mut rt: ServiceRuntime<Msg, Vec<String>> = ServiceRuntime::new(|_| 0);
        rt.register(Box::new(EmitOnce { emitted: false }));
        rt.schedule(10, Msg::Ping(1));
        rt.schedule(10, Msg::Ping(2));
        rt.schedule(10, Msg::Ping(3));
        let mut ctx = Vec::new();
        rt.run(&mut ctx, 1_000);
        assert_eq!(ctx, ["ping 1@10", "ping 2@10", "ping 3@10", "pong 1@10"]);
    }
}
