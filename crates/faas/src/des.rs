//! A small deterministic discrete-event simulation engine.
//!
//! Virtual time is measured in microseconds. Events are totally ordered by
//! `(time, insertion sequence)`, so runs are reproducible given a seed —
//! every latency/throughput number in the DRAMS experiments comes out of
//! this engine and is exactly repeatable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// One microsecond.
pub const MICRO: SimTime = 1;
/// One millisecond in [`SimTime`] units.
pub const MILLIS: SimTime = 1_000;
/// One second in [`SimTime`] units.
pub const SECONDS: SimTime = 1_000_000;

/// A deterministic event queue over an application-defined event type.
///
/// # Example
///
/// ```
/// use drams_faas::des::{EventQueue, MILLIS};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut q = EventQueue::new();
/// q.schedule(2 * MILLIS, Ev::Pong);
/// q.schedule(1 * MILLIS, Ev::Ping);
/// assert_eq!(q.pop().unwrap().1, Ev::Ping);
/// assert_eq!(q.now(), MILLIS);
/// assert_eq!(q.pop().unwrap().1, Ev::Pong);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at an absolute virtual time (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
    }

    /// Pops the next event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, slot)) = self.heap.pop()?;
        self.now = at;
        let event = self.slots[slot].take().expect("slot filled when scheduled");
        self.free.push(slot);
        Some((at, event))
    }

    /// Pops the next event only if it fires at or before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Online mean/percentile accumulator for latency series.
///
/// Stores all samples (experiments are bounded), so percentiles are exact.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<SimTime>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimTime) {
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean in [`SimTime`] units (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Exact percentile (`p` in 0..=100); 0 when empty.
    #[must_use]
    pub fn percentile(&mut self, p: f64) -> SimTime {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        // Nearest-rank percentile: the smallest value with at least p% of
        // samples at or below it.
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(n - 1)]
    }

    /// Maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> SimTime {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.schedule(10, "b");
        q.schedule(10, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop().unwrap(), (10, 1));
        assert_eq!(q.pop().unwrap(), (20, 2));
        assert_eq!(q.pop().unwrap(), (30, 3));
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        // schedule is relative to the new now
        q.schedule(5, ());
        assert_eq!(q.pop().unwrap().0, 10);
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(100, "later");
        assert!(q.pop_before(50).is_none());
        assert_eq!(q.pop_before(100).unwrap().1, "later");
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.pop();
        q.schedule_at(3, "past"); // in the past: clamped to now = 10
        assert_eq!(q.pop().unwrap().0, 10);
    }

    #[test]
    fn slot_reuse_does_not_corrupt() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(i, i);
        }
        for _ in 0..50 {
            q.pop();
        }
        for i in 100..200 {
            q.schedule_at(i, i);
        }
        let mut last = 0;
        while let Some((t, v)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(t, v);
        }
    }

    #[test]
    fn latency_stats_percentiles() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        assert_eq!(s.len(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(50.0), 50);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.max(), 100);
    }

    #[test]
    fn latency_stats_empty_is_zeroes() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0);
        assert_eq!(s.max(), 0);
        assert!(s.is_empty());
    }
}
