//! Fixed-vector determinism regression for the chain layer.
//!
//! Transaction ids and block hashes are derived from canonical encodings
//! and Schnorr signatures; the vectors below were produced by the
//! pre-Montgomery implementation and must never drift (consensus
//! invariant: every node derives identical ids).

use drams_chain::block::Block;
use drams_chain::tx::Transaction;
use drams_crypto::schnorr::Keypair;
use drams_crypto::sha256::Digest;

#[test]
fn transaction_id_and_block_hash_are_pinned() {
    let kp = Keypair::from_seed(b"vector-key-1");
    let tx = Transaction::new_signed(
        &kp,
        3,
        "drams-monitor",
        "store_log",
        b"fixed payload".to_vec(),
    );
    assert_eq!(
        tx.id().to_hex(),
        "9a54fe9d12f59253724935474cb62e3c7787dc8c0ec8db0c737ac719c0ae8927"
    );
    tx.verify_signature().unwrap();

    let block = Block::mine(Digest::ZERO, 1, vec![tx], 1234, 4);
    assert_eq!(
        block.header.tx_root.to_hex(),
        "9a54fe9d12f59253724935474cb62e3c7787dc8c0ec8db0c737ac719c0ae8927"
    );
    assert_eq!(
        block.hash().to_hex(),
        "03f41fded90d48ce4ec72722920ffe459fd277a0bee279ca912c534fc37598e7"
    );
    block.verify_signatures().unwrap();
}

#[test]
fn batched_block_verification_matches_per_tx() {
    let kp1 = Keypair::from_seed(b"vector-key-1");
    let kp2 = Keypair::from_seed(b"vector-key-2");
    let mut txs: Vec<Transaction> = (0..6)
        .map(|i| {
            let kp = if i % 2 == 0 { &kp1 } else { &kp2 };
            Transaction::new_signed(kp, i, "drams-monitor", "store_log", vec![i as u8; 16])
        })
        .collect();
    let block = Block::mine(Digest::ZERO, 1, txs.clone(), 0, 0);
    block.verify_signatures().unwrap();

    // Tamper one payload: both paths must reject.
    txs[3].payload = b"tampered".to_vec();
    let bad = Block::mine(Digest::ZERO, 1, txs, 0, 0);
    assert!(bad.verify_signatures().is_err());
    assert!(bad.transactions[3].verify_signature().is_err());
    assert!(bad.transactions[2].verify_signature().is_ok());
}
