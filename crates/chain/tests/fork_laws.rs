//! Pinning and property tests of the fork-analysis math (E2's integrity
//! numbers and the Analyser's reorg reasoning both lean on it).
//!
//! The closed forms are pinned against hand-derivable values (gambler's
//! ruin: `(q/p)^deficit`) and against Nakamoto's published table, and
//! the Monte Carlo race in `simulate_catch_up` is property-checked to
//! converge to the closed form across the whole sub-majority parameter
//! space — the cross-validation E2 relies on when it prints analytic and
//! simulated columns side by side.

use drams_chain::fork::{
    catch_up_probability, integrity_sweep, nakamoto_success_probability, simulate_catch_up,
};
use proptest::prelude::*;

/// Gambler's ruin gives exactly `(q/p)^deficit`; pin hand-computed
/// points so a regression in either the ratio or the exponent shows up
/// as an exact-value failure, not a tolerance drift.
#[test]
fn catch_up_closed_form_pinned_values() {
    // q = 0.25 → q/p = 1/3; deficit 2 → 1/9.
    assert!((catch_up_probability(0.25, 2) - 1.0 / 9.0).abs() < 1e-12);
    // q = 0.2 → q/p = 1/4; deficit 1 → 1/4, deficit 3 → 1/64.
    assert!((catch_up_probability(0.2, 1) - 0.25).abs() < 1e-12);
    assert!((catch_up_probability(0.2, 3) - 1.0 / 64.0).abs() < 1e-12);
    // q = 0.4 → q/p = 2/3; deficit 2 → 4/9.
    assert!((catch_up_probability(0.4, 2) - 4.0 / 9.0).abs() < 1e-12);
    // Deficit 0 is already caught up.
    assert!((catch_up_probability(0.1, 0) - 1.0).abs() < 1e-12);
}

/// `z = 0` means the attacker only has to mine the next block first —
/// Nakamoto's sum degenerates to 1 for any non-zero share.
#[test]
fn nakamoto_zero_confirmations_pinned() {
    for q in [0.05, 0.25, 0.45] {
        assert!((nakamoto_success_probability(q, 0) - 1.0).abs() < 1e-9);
    }
}

/// Regression pins at shares between the published table columns
/// (values computed once from the formula and frozen — any change to
/// the Poisson/ruin arithmetic moves them).
#[test]
fn nakamoto_additional_reference_values() {
    assert!((nakamoto_success_probability(0.15, 5) - 0.0067838).abs() < 1e-6);
    assert!((nakamoto_success_probability(0.45, 5) - 0.7897858).abs() < 1e-6);
    assert!((nakamoto_success_probability(0.45, 10) - 0.6854240).abs() < 1e-6);
}

/// The catch-up race can never be *easier* than overtaking from one
/// block further behind: monotone in the deficit.
#[test]
fn catch_up_monotone_in_deficit() {
    for q_permille in [100u32, 250, 400] {
        let q = f64::from(q_permille) / 1000.0;
        let mut last = 1.0 + 1e-12;
        for deficit in 0..8 {
            let p = catch_up_probability(q, deficit);
            assert!(p < last, "q={q} deficit={deficit}: {p} !< {last}");
            last = p;
        }
    }
}

/// The E2 sweep pairs each analytic point with its simulation at
/// deficit z + 1; both columns must agree within Monte Carlo noise.
#[test]
fn integrity_sweep_columns_cross_validate() {
    for point in integrity_sweep(&[0.1, 0.3], &[1, 3], 30_000, 11) {
        let analytic = catch_up_probability(point.attacker_share, point.confirmations + 1);
        assert!(
            (point.simulated_probability - analytic).abs() < 0.02,
            "q={} z={}: simulated {} vs closed form {analytic}",
            point.attacker_share,
            point.confirmations,
            point.simulated_probability
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: across the sub-majority space the Monte Carlo race
    /// converges to the gambler's-ruin closed form. `q` is drawn in
    /// integer permille (the vendored proptest has no float strategies,
    /// and integers keep failing cases exactly reproducible).
    #[test]
    fn simulation_converges_to_closed_form(
        q_permille in 50u32..450,
        deficit in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let q = f64::from(q_permille) / 1000.0;
        let analytic = catch_up_probability(q, deficit);
        let trials = 20_000;
        let simulated = simulate_catch_up(q, deficit, trials, seed);
        // Binomial standard error is at most 0.5/sqrt(trials) ≈ 0.0035;
        // 6σ plus the truncation error of the walk's cutoff stays well
        // under 0.025.
        prop_assert!(
            (simulated - analytic).abs() < 0.025,
            "q={} deficit={} seed={}: simulated {} vs analytic {}",
            q, deficit, seed, simulated, analytic
        );
    }

    /// Property: one extra confirmation never helps the attacker, in
    /// both the closed form and Nakamoto's formula.
    #[test]
    fn more_confirmations_never_help_the_attacker(
        q_permille in 1u32..500,
        z in 0u32..12,
    ) {
        let q = f64::from(q_permille) / 1000.0;
        prop_assert!(
            catch_up_probability(q, z + 1) <= catch_up_probability(q, z) + 1e-12
        );
        prop_assert!(
            nakamoto_success_probability(q, z + 1)
                <= nakamoto_success_probability(q, z) + 1e-12
        );
    }
}
