//! Signed smart-contract transactions.
//!
//! Every DRAMS log entry reaches the blockchain as a transaction invoking
//! the monitor contract. Transactions are Schnorr-signed by the submitting
//! Logging Interface, making log submissions non-repudiable (paper §I).

use crate::error::ChainError;
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::schnorr::{Keypair, PublicKey, Signature};
use drams_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};

/// A transaction identifier (SHA-256 of the canonical encoding).
pub type TxId = Digest;

/// A signed contract invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// The submitting account's public key.
    pub sender: PublicKey,
    /// Per-sender sequence number, starting at 0.
    pub nonce: u64,
    /// Name of the target contract.
    pub contract: String,
    /// Method to invoke.
    pub method: String,
    /// Canonical-encoded method arguments.
    pub payload: Vec<u8>,
    /// Schnorr signature over the signing bytes.
    pub signature: Signature,
}

impl Transaction {
    /// Builds and signs a transaction.
    #[must_use]
    pub fn new_signed(
        keypair: &Keypair,
        nonce: u64,
        contract: impl Into<String>,
        method: impl Into<String>,
        payload: Vec<u8>,
    ) -> Transaction {
        let contract = contract.into();
        let method = method.into();
        let signing = signing_bytes(&keypair.public(), nonce, &contract, &method, &payload);
        let signature = keypair.sign(&signing);
        Transaction {
            sender: keypair.public(),
            nonce,
            contract,
            method,
            payload,
            signature,
        }
    }

    /// The transaction id: SHA-256 of the canonical encoding.
    #[must_use]
    pub fn id(&self) -> TxId {
        self.canonical_digest()
    }

    /// Verifies the sender's signature.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BadSignature`] when verification fails.
    pub fn verify_signature(&self) -> Result<(), ChainError> {
        self.sender
            .verify(&self.signing_bytes(), &self.signature)
            .map_err(ChainError::from)
    }

    /// The exact bytes this transaction's Schnorr signature covers.
    ///
    /// Exposed so block validation can batch-verify many transactions in
    /// one [`drams_crypto::schnorr::batch_verify`] call.
    #[must_use]
    pub fn signing_bytes(&self) -> Vec<u8> {
        signing_bytes(
            &self.sender,
            self.nonce,
            &self.contract,
            &self.method,
            &self.payload,
        )
    }

    /// Approximate wire size in bytes (used by the log-size experiments).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.to_canonical_bytes().len()
    }

    /// The sender's address (public-key fingerprint).
    #[must_use]
    pub fn sender_address(&self) -> Digest {
        self.sender.fingerprint()
    }
}

fn signing_bytes(
    sender: &PublicKey,
    nonce: u64,
    contract: &str,
    method: &str,
    payload: &[u8],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(b"drams.tx.v1");
    sender.encode(&mut w);
    w.put_u64(nonce);
    w.put_str(contract);
    w.put_str(method);
    w.put_bytes(payload);
    w.into_bytes()
}

impl Encode for Transaction {
    fn encode(&self, w: &mut Writer) {
        self.sender.encode(w);
        w.put_u64(self.nonce);
        w.put_str(&self.contract);
        w.put_str(&self.method);
        w.put_bytes(&self.payload);
        self.signature.encode(w);
    }
}

impl Decode for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, drams_crypto::CryptoError> {
        Ok(Transaction {
            sender: PublicKey::decode(r)?,
            nonce: r.get_u64()?,
            contract: r.get_str()?,
            method: r.get_str()?,
            payload: r.get_bytes()?,
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair() -> Keypair {
        Keypair::from_seed(b"tx-tests")
    }

    fn tx() -> Transaction {
        Transaction::new_signed(&keypair(), 0, "monitor", "store_log", b"payload".to_vec())
    }

    #[test]
    fn signature_verifies() {
        tx().verify_signature().unwrap();
    }

    #[test]
    fn tampered_payload_rejected() {
        let mut t = tx();
        t.payload = b"tampered".to_vec();
        assert_eq!(t.verify_signature(), Err(ChainError::BadSignature));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let mut t = tx();
        t.nonce = 99;
        assert!(t.verify_signature().is_err());
    }

    #[test]
    fn tampered_method_rejected() {
        let mut t = tx();
        t.method = "delete_log".into();
        assert!(t.verify_signature().is_err());
    }

    #[test]
    fn substituted_sender_rejected() {
        let mut t = tx();
        t.sender = Keypair::from_seed(b"attacker").public();
        assert!(t.verify_signature().is_err());
    }

    #[test]
    fn id_changes_with_content() {
        let a = tx();
        let b = Transaction::new_signed(&keypair(), 1, "monitor", "store_log", b"payload".to_vec());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn codec_round_trip() {
        let t = tx();
        let bytes = t.to_canonical_bytes();
        let back = Transaction::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.id(), t.id());
        back.verify_signature().unwrap();
    }

    #[test]
    fn wire_len_scales_with_payload() {
        let small = Transaction::new_signed(&keypair(), 0, "m", "s", vec![0; 16]);
        let large = Transaction::new_signed(&keypair(), 0, "m", "s", vec![0; 4096]);
        assert!(large.wire_len() > small.wire_len() + 4000);
    }
}
