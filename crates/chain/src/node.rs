//! A full blockchain node: chain + mempool + contract host + miner.

use crate::block::Block;
use crate::chain::{Blockchain, ChainConfig, ImportOutcome};
use crate::contract::{ContractHost, Event, SmartContract, TxStatus};
use crate::error::ChainError;
use crate::mempool::Mempool;
use crate::tx::{Transaction, TxId};
use drams_crypto::schnorr::{Keypair, PublicKey};

/// A write-ahead journal for a [`Node`]'s durable state.
///
/// The node stays storage-agnostic: it calls these hooks for every
/// accepted transaction and every imported block, and an implementation
/// (e.g. `drams_store::persist::WalJournal`) decides how the records hit
/// disk. Replaying the journal — transactions re-submitted, blocks
/// re-imported, in recorded order — reconstructs the node's chain,
/// contract state *and* mempool exactly, which is what the E11
/// crash-restart scenarios rely on.
pub trait NodeJournal {
    /// Records a transaction about to be accepted into the mempool.
    ///
    /// Called *before* the mempool accepts (write-ahead): a journaled
    /// transaction the mempool then rejects is harmless on replay, the
    /// reverse would lose data.
    ///
    /// # Errors
    ///
    /// A human-readable reason; the node surfaces it as
    /// [`ChainError::Journal`] and does not accept the transaction.
    fn record_transaction(&mut self, tx: &Transaction) -> Result<(), String>;

    /// Records a block the chain imported (mined locally or received
    /// from a peer). Side-chain blocks are recorded too — a later reorg
    /// may promote them.
    ///
    /// # Errors
    ///
    /// As [`NodeJournal::record_transaction`].
    fn record_block(&mut self, block: &Block) -> Result<(), String>;
}

/// A single node of the private DRAMS chain.
///
/// # Example
///
/// ```
/// use drams_chain::node::Node;
/// use drams_chain::chain::ChainConfig;
/// use drams_chain::contract::KvStoreContract;
/// use drams_crypto::schnorr::Keypair;
///
/// # fn main() -> Result<(), drams_chain::error::ChainError> {
/// let mut node = Node::new(ChainConfig {
///     initial_difficulty_bits: 4,
///     ..ChainConfig::default()
/// });
/// node.register_contract(Box::new(KvStoreContract));
///
/// let kp = Keypair::from_seed(b"li-1");
/// let tx_id = node.submit_call(&kp, "kvstore", "put", b"log entry".to_vec())?;
/// node.mine_block(1_000)?;
/// assert_eq!(node.chain().confirmations(&tx_id), Some(1));
/// # Ok(())
/// # }
/// ```
pub struct Node {
    chain: Blockchain,
    mempool: Mempool,
    host: ContractHost,
    journal: Option<Box<dyn NodeJournal>>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("height", &self.chain.tip_header().height)
            .field("mempool", &self.mempool.len())
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Creates a node with a fresh chain.
    #[must_use]
    pub fn new(config: ChainConfig) -> Self {
        let chain = Blockchain::new(config);
        let mut host = ContractHost::new();
        host.sync_with(&chain);
        Node {
            chain,
            mempool: Mempool::new(),
            host,
            journal: None,
        }
    }

    /// Registers a smart contract.
    pub fn register_contract(&mut self, contract: Box<dyn SmartContract>) {
        self.host.register(contract);
    }

    /// Attaches a write-ahead journal: from now on every accepted
    /// transaction and imported block is recorded through it.
    pub fn set_journal(&mut self, journal: Box<dyn NodeJournal>) {
        self.journal = Some(journal);
    }

    /// Detaches and returns the journal, if one was attached — used by
    /// crash-recovery harnesses to reuse the journal's backing log for
    /// the restarted node.
    pub fn take_journal(&mut self) -> Option<Box<dyn NodeJournal>> {
        self.journal.take()
    }

    /// The underlying chain (read-only).
    #[must_use]
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The contract host (read-only).
    #[must_use]
    pub fn host(&self) -> &ContractHost {
        &self.host
    }

    /// Pending transaction count.
    #[must_use]
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Iterates the pending transactions in arrival order.
    pub fn pending_transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.mempool.iter()
    }

    /// Byzantine-node fault injection: silently discards one pending
    /// transaction (a withheld commit), returning it. The write-ahead
    /// journal is deliberately **not** touched — a node replaying its
    /// journal after a crash would resurrect the transaction, exactly as
    /// a real silent drop behaves.
    pub fn withhold_transaction(&mut self, id: &TxId) -> Option<Transaction> {
        self.mempool.remove(id)
    }

    /// The nonce `sender` should use for its next transaction, accounting
    /// for transactions still in the mempool.
    #[must_use]
    pub fn next_nonce(&self, sender: &PublicKey) -> u64 {
        self.host.account_nonce(sender) + self.mempool.pending_from(sender) as u64
    }

    /// Signs and submits a contract call in one step.
    ///
    /// # Errors
    ///
    /// As [`Node::submit_transaction`].
    pub fn submit_call(
        &mut self,
        keypair: &Keypair,
        contract: &str,
        method: &str,
        payload: Vec<u8>,
    ) -> Result<TxId, ChainError> {
        let nonce = self.next_nonce(&keypair.public());
        let tx = Transaction::new_signed(keypair, nonce, contract, method, payload);
        self.submit_transaction(tx)
    }

    /// Submits a pre-signed transaction to the mempool.
    ///
    /// # Errors
    ///
    /// [`ChainError::BadSignature`] or
    /// [`ChainError::DuplicateTransaction`].
    pub fn submit_transaction(&mut self, tx: Transaction) -> Result<TxId, ChainError> {
        if self.chain.config().verify_signatures {
            tx.verify_signature()?;
        }
        if let Some(journal) = &mut self.journal {
            // Write-ahead: journal before the mempool accepts. A record
            // the mempool then rejects is harmless on replay.
            journal
                .record_transaction(&tx)
                .map_err(ChainError::Journal)?;
        }
        self.mempool.add(tx)
    }

    /// Mines one block from the mempool at the required difficulty,
    /// imports it and executes its transactions. Returns the block (also
    /// when empty — DRAMS epochs advance on empty blocks too).
    ///
    /// # Errors
    ///
    /// Propagates import errors (which indicate a bug, since the node
    /// mines exactly what the chain requires).
    pub fn mine_block(&mut self, timestamp_ms: u64) -> Result<Block, ChainError> {
        let txs = self.mempool.take(self.chain.config().max_block_txs);
        let parent = self.chain.tip_hash();
        let height = self.chain.tip_header().height + 1;
        let bits = self.chain.required_difficulty(&parent)?;
        let block = Block::mine(parent, height, txs, timestamp_ms, bits);
        if let Some(journal) = &mut self.journal {
            // Write-ahead, like transactions: the mined block is durable
            // before the chain advances, so a journal failure (or a
            // crash between the two steps) never leaves the in-memory
            // tip ahead of the durable log. Replaying a journaled block
            // whose import below then failed is safe — a self-mined
            // block imports deterministically.
            journal.record_block(&block).map_err(ChainError::Journal)?;
        }
        self.chain.import(block.clone())?;
        self.host.sync_with(&self.chain);
        Ok(block)
    }

    /// Imports a block received from a peer, pruning its transactions from
    /// the mempool and syncing contract state.
    ///
    /// # Errors
    ///
    /// Any [`ChainError`] from validation, or [`ChainError::Journal`]
    /// when the block imported but could not be made durable (the
    /// in-memory state is consistent; only the journal is behind).
    pub fn receive_block(&mut self, block: Block) -> Result<ImportOutcome, ChainError> {
        let ids: Vec<TxId> = block.transactions.iter().map(Transaction::id).collect();
        // Peer blocks cannot be journaled write-ahead: import may
        // legitimately reject them, and junk records would poison
        // replay. Journal write-behind instead, only after the mempool
        // prune and contract sync settle, so a journal failure leaves
        // the in-memory node fully consistent.
        let journaled = self.journal.is_some().then(|| block.clone());
        let outcome = self.chain.import(block)?;
        if !matches!(
            outcome,
            ImportOutcome::SideChain | ImportOutcome::AlreadyKnown
        ) {
            self.mempool.prune(ids.iter());
            self.host.sync_with(&self.chain);
        }
        if !matches!(outcome, ImportOutcome::AlreadyKnown) {
            if let (Some(journal), Some(block)) = (&mut self.journal, &journaled) {
                // Side-chain blocks are journaled too: a later reorg may
                // promote them, and replay re-runs the same fork choice.
                journal.record_block(block).map_err(ChainError::Journal)?;
            }
        }
        Ok(outcome)
    }

    /// All contract events so far.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        self.host.events()
    }

    /// Events emitted since `cursor`; returns the slice and the new cursor.
    #[must_use]
    pub fn events_since(&self, cursor: usize) -> (&[Event], usize) {
        self.host.events_since(cursor)
    }

    /// Execution receipt for a transaction.
    #[must_use]
    pub fn receipt(&self, tx: &TxId) -> Option<&(u64, TxStatus)> {
        self.host.receipt(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::KvStoreContract;

    fn node(bits: u32) -> Node {
        let mut n = Node::new(ChainConfig {
            initial_difficulty_bits: bits,
            retarget_interval: 0,
            ..ChainConfig::default()
        });
        n.register_contract(Box::new(KvStoreContract));
        n
    }

    #[test]
    fn submit_mine_execute_cycle() {
        let mut n = node(0);
        let kp = Keypair::from_seed(b"node-tests");
        let id = n
            .submit_call(&kp, "kvstore", "put", b"entry".to_vec())
            .unwrap();
        assert_eq!(n.mempool_len(), 1);
        let block = n.mine_block(1_000).unwrap();
        assert_eq!(block.transactions.len(), 1);
        assert_eq!(n.mempool_len(), 0);
        assert_eq!(n.receipt(&id).unwrap().1, TxStatus::Ok);
        assert_eq!(n.events().len(), 1);
    }

    #[test]
    fn next_nonce_counts_pending() {
        let mut n = node(0);
        let kp = Keypair::from_seed(b"node-tests");
        assert_eq!(n.next_nonce(&kp.public()), 0);
        n.submit_call(&kp, "kvstore", "put", vec![]).unwrap();
        assert_eq!(n.next_nonce(&kp.public()), 1);
        n.submit_call(&kp, "kvstore", "put", vec![]).unwrap();
        assert_eq!(n.next_nonce(&kp.public()), 2);
        n.mine_block(1).unwrap();
        assert_eq!(n.next_nonce(&kp.public()), 2);
    }

    #[test]
    fn rejects_bad_signature_at_submit() {
        let mut n = node(0);
        let kp = Keypair::from_seed(b"node-tests");
        let mut tx = Transaction::new_signed(&kp, 0, "kvstore", "put", vec![]);
        tx.payload = b"evil".to_vec();
        assert_eq!(n.submit_transaction(tx), Err(ChainError::BadSignature));
    }

    #[test]
    fn peers_converge_via_receive_block() {
        let mut miner = node(0);
        let mut follower = node(0);
        let kp = Keypair::from_seed(b"node-tests");
        miner
            .submit_call(&kp, "kvstore", "put", b"x".to_vec())
            .unwrap();
        let block = miner.mine_block(1_000).unwrap();
        follower.receive_block(block).unwrap();
        assert_eq!(follower.chain().tip_hash(), miner.chain().tip_hash());
        assert_eq!(follower.events().len(), miner.events().len());
    }

    #[test]
    fn events_cursor_advances() {
        let mut n = node(0);
        let kp = Keypair::from_seed(b"node-tests");
        n.submit_call(&kp, "kvstore", "put", vec![]).unwrap();
        n.mine_block(1).unwrap();
        let (events, cursor) = n.events_since(0);
        assert_eq!(events.len(), 1);
        let (events, _) = n.events_since(cursor);
        assert!(events.is_empty());
    }

    #[test]
    fn empty_blocks_still_mine() {
        let mut n = node(2);
        let block = n.mine_block(1).unwrap();
        assert!(block.transactions.is_empty());
        assert_eq!(n.chain().tip_header().height, 1);
    }
}
