//! Attacker fork analysis: the integrity guarantee of tunable PoW.
//!
//! Paper §III: a private chain with lightweight PoW keeps storage latency
//! low, "however, due to the limited size of the network and a possibly
//! lightweight PoW, this solution does not ensure strong integrity
//! guarantees." This module quantifies that trade-off: the probability
//! that an attacker controlling a fraction `q` of the hashrate rewrites a
//! log entry buried under `z` confirmations — computed both with
//! Nakamoto's analytic formula and with a Monte Carlo random walk the
//! tests cross-validate against the gambler's-ruin closed form.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nakamoto's attacker-success probability (bitcoin.pdf §11): the chance
/// an attacker with hashrate share `q` ever overtakes the honest chain
/// when the target transaction has `z` confirmations.
///
/// Returns 1.0 whenever `q >= 0.5`.
///
/// # Panics
///
/// Panics if `q` is not within `[0, 1]`.
#[must_use]
pub fn nakamoto_success_probability(q: f64, z: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    if q >= 0.5 {
        return 1.0;
    }
    if q == 0.0 {
        return 0.0;
    }
    let p = 1.0 - q;
    let lambda = z as f64 * (q / p);
    let mut sum = 1.0;
    let mut poisson = (-lambda).exp();
    for k in 0..=z {
        if k > 0 {
            poisson *= lambda / k as f64;
        }
        sum -= poisson * (1.0 - (q / p).powi((z - k) as i32));
    }
    sum.clamp(0.0, 1.0)
}

/// Closed-form gambler's-ruin catch-up probability: an attacker currently
/// `deficit` blocks behind ever *closes the gap* (Satoshi's `q_z =
/// (q/p)^z` convention), with per-step win probability `q`.
///
/// # Panics
///
/// Panics if `q` is not within `[0, 1]`.
#[must_use]
pub fn catch_up_probability(q: f64, deficit: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    if q >= 0.5 {
        return 1.0;
    }
    if q == 0.0 {
        return 0.0;
    }
    let ratio = q / (1.0 - q);
    ratio.powi(deficit as i32)
}

/// Monte Carlo estimate of the catch-up probability via an explicit
/// attacker-vs-honest block race.
///
/// Each trial runs the random walk until the attacker gets ahead
/// (success) or falls `cutoff` blocks behind (counted as failure — the
/// truncation error is `≤ (q/p)^cutoff`).
///
/// # Panics
///
/// Panics if `q` is not within `[0, 1]` or `trials == 0`.
#[must_use]
pub fn simulate_catch_up(q: f64, deficit: u32, trials: u32, seed: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!(trials > 0, "need at least one trial");
    if q == 0.0 {
        return 0.0;
    }
    if deficit == 0 {
        return 1.0;
    }
    let cutoff = deficit as i64 + 80;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0u32;
    for _ in 0..trials {
        let mut behind = deficit as i64;
        loop {
            if rng.gen_bool(q) {
                behind -= 1;
            } else {
                behind += 1;
            }
            if behind == 0 {
                successes += 1;
                break;
            }
            if behind > cutoff {
                break;
            }
        }
    }
    successes as f64 / trials as f64
}

/// One row of the integrity-guarantee table of experiment E2: for a given
/// attacker share and confirmation depth, the probability a committed log
/// entry can still be rewritten.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityPoint {
    /// Attacker hashrate share.
    pub attacker_share: f64,
    /// Confirmations of the log entry.
    pub confirmations: u32,
    /// Analytic rewrite probability (Nakamoto).
    pub rewrite_probability: f64,
    /// Monte Carlo estimate of the same.
    pub simulated_probability: f64,
}

/// Sweeps attacker shares × confirmation depths for experiment E2.
#[must_use]
pub fn integrity_sweep(
    shares: &[f64],
    confirmations: &[u32],
    trials: u32,
    seed: u64,
) -> Vec<IntegrityPoint> {
    let mut out = Vec::new();
    for (i, &q) in shares.iter().enumerate() {
        for (j, &z) in confirmations.iter().enumerate() {
            out.push(IntegrityPoint {
                attacker_share: q,
                confirmations: z,
                rewrite_probability: nakamoto_success_probability(q, z),
                simulated_probability: simulate_catch_up(
                    q,
                    z + 1,
                    trials,
                    seed.wrapping_add((i * 1_000 + j) as u64),
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nakamoto_reference_values() {
        // Values from bitcoin.pdf §11 (q = 0.1).
        assert!((nakamoto_success_probability(0.1, 0) - 1.0).abs() < 1e-9);
        assert!((nakamoto_success_probability(0.1, 1) - 0.2045873).abs() < 1e-4);
        assert!((nakamoto_success_probability(0.1, 5) - 0.0009137).abs() < 1e-5);
        assert!((nakamoto_success_probability(0.1, 10) - 0.0000012).abs() < 1e-6);
        // q = 0.3 values.
        assert!((nakamoto_success_probability(0.3, 5) - 0.1773523).abs() < 1e-4);
        assert!((nakamoto_success_probability(0.3, 10) - 0.0416605).abs() < 1e-4);
    }

    #[test]
    fn majority_attacker_always_wins() {
        assert_eq!(nakamoto_success_probability(0.5, 10), 1.0);
        assert_eq!(nakamoto_success_probability(0.7, 50), 1.0);
        assert_eq!(catch_up_probability(0.6, 100), 1.0);
    }

    #[test]
    fn zero_attacker_never_wins() {
        assert_eq!(nakamoto_success_probability(0.0, 1), 0.0);
        assert_eq!(catch_up_probability(0.0, 1), 0.0);
        assert_eq!(simulate_catch_up(0.0, 1, 10, 1), 0.0);
    }

    #[test]
    fn probability_decreases_with_confirmations() {
        let mut last = 1.0;
        for z in [1, 2, 4, 8, 16] {
            let p = nakamoto_success_probability(0.25, z);
            assert!(p < last, "z={z}: {p} !< {last}");
            last = p;
        }
    }

    #[test]
    fn probability_increases_with_attacker_share() {
        let mut last = 0.0;
        for q in [0.05, 0.15, 0.25, 0.35, 0.45] {
            let p = nakamoto_success_probability(q, 6);
            assert!(p > last, "q={q}: {p} !> {last}");
            last = p;
        }
    }

    #[test]
    fn monte_carlo_matches_gamblers_ruin() {
        for (q, deficit) in [(0.2, 2u32), (0.3, 3), (0.4, 2)] {
            let analytic = catch_up_probability(q, deficit);
            let simulated = simulate_catch_up(q, deficit, 40_000, 99);
            assert!(
                (analytic - simulated).abs() < 0.01,
                "q={q} z={deficit}: analytic {analytic} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn integrity_sweep_shape() {
        let points = integrity_sweep(&[0.1, 0.3], &[1, 6], 2_000, 5);
        assert_eq!(points.len(), 4);
        // More confirmations → lower rewrite probability at equal share.
        assert!(points[0].rewrite_probability > points[1].rewrite_probability);
        // Higher share → higher rewrite probability at equal confirmations.
        assert!(points[2].rewrite_probability > points[0].rewrite_probability);
    }

    #[test]
    #[should_panic(expected = "q must be a probability")]
    fn invalid_share_panics() {
        let _ = nakamoto_success_probability(1.5, 1);
    }
}
