//! Smart-contract runtime.
//!
//! The paper's monitoring checks run as a smart contract on a private
//! blockchain (§II: "Smart-contract blockchain: … storing and comparing
//! logs, using expressly devised algorithms"). This module provides the
//! deterministic execution environment: per-contract key-value storage
//! with journaled rollback, an append-only event log (the channel through
//! which security alerts reach the Logging Interfaces), and a host that
//! executes main-chain blocks in order and re-executes deterministically
//! after a reorg.

use crate::block::{Block, BlockHash};
use crate::chain::Blockchain;
use crate::tx::TxId;
use drams_crypto::schnorr::PublicKey;
use drams_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An event emitted by a contract during execution — DRAMS security
/// alerts travel this way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Emitting contract.
    pub contract: String,
    /// Event name, e.g. `alert.request_tampering`.
    pub name: String,
    /// Canonical-encoded event payload.
    pub data: Vec<u8>,
    /// Height of the block whose execution emitted this.
    pub block_height: u64,
    /// Timestamp of that block.
    pub timestamp_ms: u64,
    /// The transaction that triggered it.
    pub tx_id: TxId,
}

/// Per-contract storage with an undo journal, so a failed transaction
/// rolls back exactly its own writes.
#[derive(Debug, Default)]
pub struct Storage {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    journal: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl Storage {
    /// Reads a value.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.map.get(key)
    }

    /// Writes a value, journaling the previous one.
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let old = self.map.insert(key.clone(), value);
        self.journal.push((key, old));
    }

    /// Removes a value, journaling the previous one.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let old = self.map.remove(key);
        self.journal.push((key.to_vec(), old.clone()));
        old
    }

    /// Iterates over entries with a given key prefix.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a Vec<u8>, &'a Vec<u8>)> + 'a {
        self.map
            .range(prefix.to_vec()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn begin_tx(&mut self) {
        self.journal.clear();
    }

    fn rollback(&mut self) {
        while let Some((key, old)) = self.journal.pop() {
            match old {
                Some(v) => {
                    self.map.insert(key, v);
                }
                None => {
                    self.map.remove(&key);
                }
            }
        }
    }
}

/// Execution context passed to a contract method.
#[derive(Debug)]
pub struct ExecutionContext<'a> {
    /// The contract's own storage.
    pub storage: &'a mut Storage,
    /// Sink for emitted events.
    events: &'a mut Vec<Event>,
    /// Current block height.
    pub block_height: u64,
    /// Current block timestamp.
    pub timestamp_ms: u64,
    /// The transaction sender.
    pub sender: PublicKey,
    /// The transaction id.
    pub tx_id: TxId,
    contract_name: String,
}

impl ExecutionContext<'_> {
    /// Emits an event.
    pub fn emit(&mut self, name: impl Into<String>, data: Vec<u8>) {
        self.events.push(Event {
            contract: self.contract_name.clone(),
            name: name.into(),
            data,
            block_height: self.block_height,
            timestamp_ms: self.timestamp_ms,
            tx_id: self.tx_id,
        });
    }

    /// The sender's address fingerprint.
    #[must_use]
    pub fn sender_address(&self) -> Digest {
        self.sender.fingerprint()
    }
}

/// A deterministic smart contract. Implementations must be pure functions
/// of (storage, method, payload, context) — no clocks, no randomness —
/// so that re-execution after a reorg reproduces identical state.
pub trait SmartContract: Send + Sync {
    /// The contract's registry name.
    fn name(&self) -> &str;

    /// Executes one method call.
    ///
    /// # Errors
    ///
    /// A returned error aborts the call; the host rolls back the call's
    /// storage writes and records a `tx.failed` event.
    fn execute(
        &self,
        ctx: &mut ExecutionContext<'_>,
        method: &str,
        payload: &[u8],
    ) -> Result<(), String>;
}

/// Receipt describing how a transaction executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TxStatus {
    /// Executed successfully.
    Ok,
    /// Contract rejected it (storage rolled back).
    Failed(String),
    /// Skipped: sender nonce did not match the account state.
    BadNonce,
    /// Skipped: no such contract.
    NoContract,
}

/// Executes main-chain blocks against registered contracts.
pub struct ContractHost {
    contracts: BTreeMap<String, Box<dyn SmartContract>>,
    storage: BTreeMap<String, Storage>,
    events: Vec<Event>,
    receipts: BTreeMap<TxId, (u64, TxStatus)>,
    account_nonces: BTreeMap<Digest, u64>,
    executed: Vec<BlockHash>,
}

impl std::fmt::Debug for ContractHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContractHost")
            .field("contracts", &self.contracts.keys().collect::<Vec<_>>())
            .field("executed_blocks", &self.executed.len())
            .field("events", &self.events.len())
            .finish()
    }
}

impl Default for ContractHost {
    fn default() -> Self {
        Self::new()
    }
}

impl ContractHost {
    /// Creates an empty host.
    #[must_use]
    pub fn new() -> Self {
        ContractHost {
            contracts: BTreeMap::new(),
            storage: BTreeMap::new(),
            events: Vec::new(),
            receipts: BTreeMap::new(),
            account_nonces: BTreeMap::new(),
            executed: Vec::new(),
        }
    }

    /// Registers a contract under its own name.
    pub fn register(&mut self, contract: Box<dyn SmartContract>) {
        let name = contract.name().to_string();
        self.storage.entry(name.clone()).or_default();
        self.contracts.insert(name, contract);
    }

    /// The account nonce expected from `sender`'s next transaction.
    #[must_use]
    pub fn account_nonce(&self, sender: &PublicKey) -> u64 {
        *self.account_nonces.get(&sender.fingerprint()).unwrap_or(&0)
    }

    /// Read-only view of a contract's storage.
    #[must_use]
    pub fn storage_of(&self, contract: &str) -> Option<&Storage> {
        self.storage.get(contract)
    }

    /// All events emitted so far, in execution order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events from `cursor` on; returns the new cursor.
    #[must_use]
    pub fn events_since(&self, cursor: usize) -> (&[Event], usize) {
        let slice = &self.events[cursor.min(self.events.len())..];
        (slice, self.events.len())
    }

    /// The receipt for a transaction, with the block height it executed in.
    #[must_use]
    pub fn receipt(&self, tx: &TxId) -> Option<&(u64, TxStatus)> {
        self.receipts.get(tx)
    }

    /// Number of main-chain blocks executed.
    #[must_use]
    pub fn executed_height(&self) -> Option<u64> {
        (!self.executed.is_empty()).then(|| self.executed.len() as u64 - 1)
    }

    /// Brings contract state in sync with `chain`'s main chain.
    ///
    /// If the executed prefix still matches, only the new suffix is
    /// executed; after a reorg the whole state is deterministically rebuilt
    /// from genesis.
    pub fn sync_with(&mut self, chain: &Blockchain) {
        let main = chain.main_chain_hashes();
        let prefix_ok = self.executed.len() <= main.len()
            && self.executed.iter().zip(main.iter()).all(|(a, b)| a == b);
        if !prefix_ok {
            self.reset();
        }
        let start = self.executed.len();
        for hash in &main[start..] {
            let block = chain.block(hash).expect("main chain block exists");
            self.execute_block(block);
            self.executed.push(*hash);
        }
    }

    fn reset(&mut self) {
        for storage in self.storage.values_mut() {
            *storage = Storage::default();
        }
        self.events.clear();
        self.receipts.clear();
        self.account_nonces.clear();
        self.executed.clear();
    }

    fn execute_block(&mut self, block: &Block) {
        for tx in &block.transactions {
            let tx_id = tx.id();
            let status = self.execute_tx(block, tx);
            self.receipts.insert(tx_id, (block.header.height, status));
        }
    }

    fn execute_tx(&mut self, block: &Block, tx: &crate::tx::Transaction) -> TxStatus {
        let sender_addr = tx.sender.fingerprint();
        let expected_nonce = *self.account_nonces.get(&sender_addr).unwrap_or(&0);
        if tx.nonce != expected_nonce {
            return TxStatus::BadNonce;
        }
        let Some(contract) = self.contracts.get(&tx.contract) else {
            return TxStatus::NoContract;
        };
        let storage = self
            .storage
            .get_mut(&tx.contract)
            .expect("storage created at registration");
        storage.begin_tx();
        let mut scratch_events = Vec::new();
        let mut ctx = ExecutionContext {
            storage,
            events: &mut scratch_events,
            block_height: block.header.height,
            timestamp_ms: block.header.timestamp_ms,
            sender: tx.sender,
            tx_id: tx.id(),
            contract_name: tx.contract.clone(),
        };
        let result = contract.execute(&mut ctx, &tx.method, &tx.payload);
        match result {
            Ok(()) => {
                self.account_nonces.insert(sender_addr, expected_nonce + 1);
                self.events.extend(scratch_events);
                TxStatus::Ok
            }
            Err(msg) => {
                storage.rollback();
                // A failed call still consumes the nonce (like gas-metered
                // chains), so a stuck transaction cannot wedge an account.
                self.account_nonces.insert(sender_addr, expected_nonce + 1);
                self.events.push(Event {
                    contract: tx.contract.clone(),
                    name: "tx.failed".into(),
                    data: msg.clone().into_bytes(),
                    block_height: block.header.height,
                    timestamp_ms: block.header.timestamp_ms,
                    tx_id: tx.id(),
                });
                TxStatus::Failed(msg)
            }
        }
    }
}

/// A trivial contract that stores `payload` under an incrementing key —
/// the baseline "just put logs on chain" contract used in benchmarks.
#[derive(Debug, Default)]
pub struct KvStoreContract;

impl SmartContract for KvStoreContract {
    fn name(&self) -> &str {
        "kvstore"
    }

    fn execute(
        &self,
        ctx: &mut ExecutionContext<'_>,
        method: &str,
        payload: &[u8],
    ) -> Result<(), String> {
        match method {
            "put" => {
                let seq = ctx.storage.len() as u64;
                ctx.storage
                    .insert(seq.to_be_bytes().to_vec(), payload.to_vec());
                ctx.emit("stored", seq.to_be_bytes().to_vec());
                Ok(())
            }
            "fail" => Err("requested failure".into()),
            other => Err(format!("unknown method `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Blockchain, ChainConfig};
    use crate::tx::Transaction;
    use drams_crypto::schnorr::Keypair;

    fn config() -> ChainConfig {
        ChainConfig {
            initial_difficulty_bits: 0,
            ..ChainConfig::default()
        }
    }

    fn setup() -> (Blockchain, ContractHost, Keypair) {
        let chain = Blockchain::new(config());
        let mut host = ContractHost::new();
        host.register(Box::new(KvStoreContract));
        (chain, host, Keypair::from_seed(b"host-tests"))
    }

    fn mine_with(chain: &mut Blockchain, txs: Vec<Transaction>, ts: u64) {
        let tip = chain.tip_hash();
        let height = chain.tip_header().height + 1;
        let bits = chain.required_difficulty(&tip).unwrap();
        let block = Block::mine(tip, height, txs, ts, bits);
        chain.import(block).unwrap();
    }

    #[test]
    fn executes_blocks_and_emits_events() {
        let (mut chain, mut host, kp) = setup();
        let tx = Transaction::new_signed(&kp, 0, "kvstore", "put", b"hello".to_vec());
        let id = tx.id();
        mine_with(&mut chain, vec![tx], 1000);
        host.sync_with(&chain);
        assert_eq!(host.events().len(), 1);
        assert_eq!(host.events()[0].name, "stored");
        assert_eq!(host.receipt(&id).unwrap().1, TxStatus::Ok);
        assert_eq!(host.storage_of("kvstore").unwrap().len(), 1);
        assert_eq!(host.account_nonce(&kp.public()), 1);
    }

    #[test]
    fn failed_tx_rolls_back_and_consumes_nonce() {
        let (mut chain, mut host, kp) = setup();
        let tx = Transaction::new_signed(&kp, 0, "kvstore", "fail", vec![]);
        let id = tx.id();
        mine_with(&mut chain, vec![tx], 1000);
        host.sync_with(&chain);
        assert!(matches!(host.receipt(&id).unwrap().1, TxStatus::Failed(_)));
        assert!(host.storage_of("kvstore").unwrap().is_empty());
        assert_eq!(host.account_nonce(&kp.public()), 1);
        assert_eq!(host.events()[0].name, "tx.failed");
    }

    #[test]
    fn bad_nonce_is_skipped() {
        let (mut chain, mut host, kp) = setup();
        let tx = Transaction::new_signed(&kp, 5, "kvstore", "put", vec![]);
        let id = tx.id();
        mine_with(&mut chain, vec![tx], 1000);
        host.sync_with(&chain);
        assert_eq!(host.receipt(&id).unwrap().1, TxStatus::BadNonce);
        assert_eq!(host.account_nonce(&kp.public()), 0);
    }

    #[test]
    fn unknown_contract_is_skipped() {
        let (mut chain, mut host, kp) = setup();
        let tx = Transaction::new_signed(&kp, 0, "ghost", "put", vec![]);
        let id = tx.id();
        mine_with(&mut chain, vec![tx], 1000);
        host.sync_with(&chain);
        assert_eq!(host.receipt(&id).unwrap().1, TxStatus::NoContract);
    }

    #[test]
    fn incremental_sync_only_executes_suffix() {
        let (mut chain, mut host, kp) = setup();
        let tx0 = Transaction::new_signed(&kp, 0, "kvstore", "put", b"a".to_vec());
        mine_with(&mut chain, vec![tx0], 1000);
        host.sync_with(&chain);
        let tx1 = Transaction::new_signed(&kp, 1, "kvstore", "put", b"b".to_vec());
        mine_with(&mut chain, vec![tx1], 2000);
        host.sync_with(&chain);
        assert_eq!(host.storage_of("kvstore").unwrap().len(), 2);
        assert_eq!(host.executed_height(), Some(2));
    }

    #[test]
    fn storage_journal_rolls_back_overwrites() {
        let mut s = Storage::default();
        s.insert(b"k".to_vec(), b"v1".to_vec());
        s.begin_tx();
        s.insert(b"k".to_vec(), b"v2".to_vec());
        s.insert(b"k2".to_vec(), b"x".to_vec());
        s.remove(b"k");
        s.rollback();
        assert_eq!(s.get(b"k"), Some(&b"v1".to_vec()));
        assert_eq!(s.get(b"k2"), None);
    }

    #[test]
    fn scan_prefix_is_ordered_and_bounded() {
        let mut s = Storage::default();
        s.insert(b"a.1".to_vec(), b"1".to_vec());
        s.insert(b"a.2".to_vec(), b"2".to_vec());
        s.insert(b"b.1".to_vec(), b"3".to_vec());
        let hits: Vec<_> = s.scan_prefix(b"a.").collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, &b"1".to_vec());
    }
}
