//! Multi-node gossip simulation in virtual time.
//!
//! Models a private chain deployment across federation tenants: each node
//! mines with a share of the total hashrate (block discovery is the usual
//! memoryless exponential process) and broadcasts blocks over links with
//! configurable latency. The simulation measures stale-block rate, reorg
//! frequency and convergence — the network-level behaviour behind the
//! paper's §III observation that a small private network with lightweight
//! PoW gives only weak integrity.

use crate::block::Block;
use crate::chain::{Blockchain, ChainConfig, ImportOutcome};
use crate::error::ChainError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of the gossip simulation.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Relative hashrate per node (normalised internally).
    pub hashrates: Vec<f64>,
    /// Mean network-wide block interval in virtual milliseconds.
    pub mean_block_interval_ms: f64,
    /// One-way link latency between any two nodes, in virtual ms.
    pub link_latency_ms: f64,
    /// Virtual time horizon.
    pub horizon_ms: u64,
    /// RNG seed (the simulation is fully deterministic given a seed).
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hashrates: vec![1.0; 4],
            mean_block_interval_ms: 1_000.0,
            link_latency_ms: 50.0,
            horizon_ms: 120_000,
            seed: 7,
        }
    }
}

/// Results of a gossip simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetStats {
    /// Blocks mined across all nodes.
    pub blocks_mined: u64,
    /// Blocks that did not make the final main chain (stale/orphaned).
    pub stale_blocks: u64,
    /// Number of reorg events observed across all nodes.
    pub reorgs: u64,
    /// Deepest single reorg.
    pub max_reorg_depth: u64,
    /// Final main-chain height (consensus node 0).
    pub final_height: u64,
    /// Whether all nodes ended on the same tip.
    pub converged: bool,
}

impl NetStats {
    /// Fraction of mined blocks that went stale.
    #[must_use]
    pub fn stale_rate(&self) -> f64 {
        if self.blocks_mined == 0 {
            0.0
        } else {
            self.stale_blocks as f64 / self.blocks_mined as f64
        }
    }
}

#[derive(Debug)]
enum SimEvent {
    Mine { node: usize },
    Deliver { node: usize, block: Block },
}

/// Runs the gossip simulation.
///
/// Mining is modelled analytically (difficulty-0 blocks, exponential
/// discovery times) because virtual time and wall-clock hashing cannot
/// meaningfully mix; the real hashing cost of PoW is measured separately
/// by the E1/E2 benches.
///
/// # Panics
///
/// Panics if `hashrates` is empty or sums to zero.
#[must_use]
pub fn simulate(config: &NetConfig) -> NetStats {
    let n = config.hashrates.len();
    assert!(n > 0, "need at least one node");
    let total_rate: f64 = config.hashrates.iter().sum();
    assert!(total_rate > 0.0, "total hashrate must be positive");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let chain_config = ChainConfig {
        initial_difficulty_bits: 0,
        retarget_interval: 0,
        verify_signatures: false,
        ..ChainConfig::default()
    };
    let mut chains: Vec<Blockchain> = (0..n)
        .map(|_| Blockchain::new(chain_config.clone()))
        .collect();
    // Orphan buffers per node: parent hash -> blocks waiting for it.
    let mut orphans: Vec<HashMap<crate::block::BlockHash, Vec<Block>>> =
        (0..n).map(|_| HashMap::new()).collect();

    let mut queue: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut events: HashMap<usize, SimEvent> = HashMap::new();
    let mut seq = 0usize;
    let push = |queue: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                events: &mut HashMap<usize, SimEvent>,
                seq: &mut usize,
                time: u64,
                event: SimEvent| {
        let id = *seq;
        *seq += 1;
        events.insert(id, event);
        queue.push(Reverse((time, *seq as u64, id)));
    };

    let sample_exp = |rng: &mut StdRng, rate_per_ms: f64| -> u64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        (-u.ln() / rate_per_ms).ceil() as u64
    };

    // Initial mining events.
    for (i, h) in config.hashrates.iter().enumerate() {
        let rate = (h / total_rate) / config.mean_block_interval_ms;
        let dt = sample_exp(&mut rng, rate);
        push(
            &mut queue,
            &mut events,
            &mut seq,
            dt,
            SimEvent::Mine { node: i },
        );
    }

    let mut stats = NetStats {
        blocks_mined: 0,
        stale_blocks: 0,
        reorgs: 0,
        max_reorg_depth: 0,
        final_height: 0,
        converged: false,
    };

    while let Some(Reverse((now, _, id))) = queue.pop() {
        if now > config.horizon_ms {
            break;
        }
        let event = events.remove(&id).expect("event registered");
        match event {
            SimEvent::Mine { node } => {
                let tip = chains[node].tip_hash();
                let height = chains[node].tip_header().height + 1;
                let block = Block::mine(tip, height, Vec::new(), now, 0);
                stats.blocks_mined += 1;
                import_tracking(&mut chains[node], block.clone(), &mut stats);
                for peer in 0..n {
                    if peer != node {
                        push(
                            &mut queue,
                            &mut events,
                            &mut seq,
                            now + config.link_latency_ms as u64,
                            SimEvent::Deliver {
                                node: peer,
                                block: block.clone(),
                            },
                        );
                    }
                }
                let rate = (config.hashrates[node] / total_rate) / config.mean_block_interval_ms;
                let dt = sample_exp(&mut rng, rate);
                push(
                    &mut queue,
                    &mut events,
                    &mut seq,
                    now + dt,
                    SimEvent::Mine { node },
                );
            }
            SimEvent::Deliver { node, block } => {
                deliver(&mut chains[node], &mut orphans[node], block, &mut stats);
            }
        }
    }

    stats.final_height = chains[0].tip_header().height;
    stats.converged = chains.iter().all(|c| c.tip_hash() == chains[0].tip_hash());
    // Stale blocks: mined blocks minus those on the consensus main chain
    // (genesis excluded).
    let main_len = chains[0].main_chain_hashes().len() as u64 - 1;
    stats.stale_blocks = stats.blocks_mined.saturating_sub(main_len);
    stats
}

fn import_tracking(chain: &mut Blockchain, block: Block, stats: &mut NetStats) {
    match chain.import(block) {
        Ok(ImportOutcome::Reorg { depth }) => {
            stats.reorgs += 1;
            stats.max_reorg_depth = stats.max_reorg_depth.max(depth);
        }
        Ok(_) => {}
        Err(ChainError::UnknownParent) => unreachable!("local mining extends own tip"),
        Err(e) => panic!("unexpected import failure in simulation: {e}"),
    }
}

fn deliver(
    chain: &mut Blockchain,
    orphans: &mut HashMap<crate::block::BlockHash, Vec<Block>>,
    block: Block,
    stats: &mut NetStats,
) {
    match chain.import(block.clone()) {
        Ok(ImportOutcome::Reorg { depth }) => {
            stats.reorgs += 1;
            stats.max_reorg_depth = stats.max_reorg_depth.max(depth);
        }
        Ok(_) => {}
        Err(ChainError::UnknownParent) => {
            orphans.entry(block.header.parent).or_default().push(block);
            return;
        }
        Err(e) => panic!("unexpected import failure in simulation: {e}"),
    }
    // Importing may unblock buffered children (recursively).
    let hash = block.hash();
    if let Some(children) = orphans.remove(&hash) {
        for child in children {
            deliver(chain, orphans, child, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let config = NetConfig {
            horizon_ms: 30_000,
            ..NetConfig::default()
        };
        let a = simulate(&config);
        let b = simulate(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn nodes_converge_with_low_latency() {
        let stats = simulate(&NetConfig {
            hashrates: vec![1.0, 1.0, 1.0],
            mean_block_interval_ms: 2_000.0,
            link_latency_ms: 10.0,
            horizon_ms: 100_000,
            seed: 42,
        });
        assert!(stats.converged, "stats: {stats:?}");
        assert!(stats.blocks_mined > 10);
        assert!(
            stats.stale_rate() < 0.2,
            "stale rate {}",
            stats.stale_rate()
        );
    }

    #[test]
    fn high_latency_increases_staleness() {
        let low = simulate(&NetConfig {
            hashrates: vec![1.0; 4],
            mean_block_interval_ms: 500.0,
            link_latency_ms: 5.0,
            horizon_ms: 200_000,
            seed: 11,
        });
        let high = simulate(&NetConfig {
            hashrates: vec![1.0; 4],
            mean_block_interval_ms: 500.0,
            link_latency_ms: 400.0,
            horizon_ms: 200_000,
            seed: 11,
        });
        assert!(
            high.stale_rate() > low.stale_rate(),
            "high-latency stale rate {} should exceed low-latency {}",
            high.stale_rate(),
            low.stale_rate()
        );
    }

    #[test]
    fn single_node_never_goes_stale() {
        let stats = simulate(&NetConfig {
            hashrates: vec![1.0],
            mean_block_interval_ms: 200.0,
            link_latency_ms: 0.0,
            horizon_ms: 50_000,
            seed: 3,
        });
        assert_eq!(stats.stale_blocks, 0);
        assert_eq!(stats.reorgs, 0);
        assert!(stats.converged);
    }

    #[test]
    #[should_panic(expected = "need at least one node")]
    fn empty_hashrates_panics() {
        let _ = simulate(&NetConfig {
            hashrates: vec![],
            ..NetConfig::default()
        });
    }
}
