//! Blocks and proof-of-work mining.

use crate::error::ChainError;
use crate::tx::Transaction;
use drams_crypto::codec::{decode_seq, Decode, Encode, Reader, Writer};
use drams_crypto::merkle::MerkleTree;
use drams_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};

/// A block hash.
pub type BlockHash = Digest;

/// Block header: everything that is hashed for proof-of-work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Hash of the parent block ([`Digest::ZERO`] for genesis).
    pub parent: BlockHash,
    /// Height (genesis = 0).
    pub height: u64,
    /// Merkle root over the transaction ids.
    pub tx_root: Digest,
    /// Millisecond timestamp (simulation or wall clock).
    pub timestamp_ms: u64,
    /// Required leading zero bits of the block hash — the tunable PoW
    /// parameter of the paper's private-chain design (§III).
    pub difficulty_bits: u32,
    /// Proof-of-work nonce.
    pub nonce: u64,
}

impl BlockHeader {
    /// The block hash (SHA-256 of the canonical header encoding).
    #[must_use]
    pub fn hash(&self) -> BlockHash {
        self.canonical_digest()
    }

    /// True when the hash meets the declared difficulty.
    #[must_use]
    pub fn meets_difficulty(&self) -> bool {
        self.hash().leading_zero_bits() >= self.difficulty_bits
    }
}

impl Encode for BlockHeader {
    fn encode(&self, w: &mut Writer) {
        self.parent.encode(w);
        w.put_u64(self.height);
        self.tx_root.encode(w);
        w.put_u64(self.timestamp_ms);
        w.put_u32(self.difficulty_bits);
        w.put_u64(self.nonce);
    }
}

impl Decode for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, drams_crypto::CryptoError> {
        Ok(BlockHeader {
            parent: Digest::decode(r)?,
            height: r.get_u64()?,
            tx_root: Digest::decode(r)?,
            timestamp_ms: r.get_u64()?,
            difficulty_bits: r.get_u32()?,
            nonce: r.get_u64()?,
        })
    }
}

/// A full block: header plus transaction body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The mined header.
    pub header: BlockHeader,
    /// Included transactions, in execution order.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Computes the Merkle root over a transaction list.
    #[must_use]
    pub fn compute_tx_root(transactions: &[Transaction]) -> Digest {
        let leaf_hashes: Vec<Digest> = transactions.iter().map(Transaction::id).collect();
        MerkleTree::from_leaf_hashes(leaf_hashes).root()
    }

    /// Assembles and mines a block: iterates the nonce until the header
    /// hash has `difficulty_bits` leading zeros. This performs *real*
    /// hashing work — the log-size and PoW experiments (E1/E2) measure it.
    #[must_use]
    pub fn mine(
        parent: BlockHash,
        height: u64,
        transactions: Vec<Transaction>,
        timestamp_ms: u64,
        difficulty_bits: u32,
    ) -> Block {
        let tx_root = Self::compute_tx_root(&transactions);
        let mut header = BlockHeader {
            parent,
            height,
            tx_root,
            timestamp_ms,
            difficulty_bits,
            nonce: 0,
        };
        while !header.meets_difficulty() {
            header.nonce = header.nonce.wrapping_add(1);
        }
        Block {
            header,
            transactions,
        }
    }

    /// The block hash.
    #[must_use]
    pub fn hash(&self) -> BlockHash {
        self.header.hash()
    }

    /// Structural self-validation: PoW and Merkle root. Chain-contextual
    /// checks (parent, height, expected difficulty) live in
    /// [`crate::chain::Blockchain::import`].
    ///
    /// # Errors
    ///
    /// [`ChainError::InsufficientWork`] or [`ChainError::BadTxRoot`].
    pub fn validate_standalone(&self) -> Result<(), ChainError> {
        if !self.header.meets_difficulty() {
            return Err(ChainError::InsufficientWork);
        }
        if Self::compute_tx_root(&self.transactions) != self.header.tx_root {
            return Err(ChainError::BadTxRoot);
        }
        Ok(())
    }

    /// Verifies every transaction signature in one batched pass.
    ///
    /// Uses [`drams_crypto::schnorr::batch_verify`], which amortises
    /// per-key window tables across the block — blocks are dominated by
    /// a handful of Logging Interface identities, so this is the hot
    /// import path. Exactly equivalent to verifying each transaction
    /// individually.
    ///
    /// # Errors
    ///
    /// [`ChainError::BadSignature`] if any transaction fails.
    pub fn verify_signatures(&self) -> Result<(), ChainError> {
        if self.transactions.is_empty() {
            return Ok(());
        }
        let messages: Vec<Vec<u8>> = self
            .transactions
            .iter()
            .map(Transaction::signing_bytes)
            .collect();
        let batch: Vec<_> = self
            .transactions
            .iter()
            .zip(&messages)
            .map(|(tx, msg)| (tx.sender, msg.as_slice(), tx.signature))
            .collect();
        drams_crypto::schnorr::batch_verify(&batch).map_err(|_| ChainError::BadSignature)
    }

    /// Total serialized size in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.to_canonical_bytes().len()
    }
}

impl Encode for Block {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        w.put_varint(self.transactions.len() as u64);
        for tx in &self.transactions {
            tx.encode(w);
        }
    }
}

impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, drams_crypto::CryptoError> {
        let header = BlockHeader::decode(r)?;
        let transactions = decode_seq(r)?;
        Ok(Block {
            header,
            transactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::schnorr::Keypair;

    fn sample_txs(n: usize) -> Vec<Transaction> {
        let kp = Keypair::from_seed(b"block-tests");
        (0..n)
            .map(|i| Transaction::new_signed(&kp, i as u64, "monitor", "store", vec![i as u8; 32]))
            .collect()
    }

    #[test]
    fn mining_meets_difficulty() {
        let block = Block::mine(Digest::ZERO, 0, sample_txs(3), 1000, 8);
        assert!(block.header.meets_difficulty());
        assert!(block.hash().leading_zero_bits() >= 8);
        block.validate_standalone().unwrap();
    }

    #[test]
    fn difficulty_zero_accepts_first_nonce() {
        let block = Block::mine(Digest::ZERO, 0, vec![], 0, 0);
        assert_eq!(block.header.nonce, 0);
    }

    #[test]
    fn tampered_tx_breaks_root() {
        let mut block = Block::mine(Digest::ZERO, 0, sample_txs(2), 0, 4);
        block.transactions[0].payload = b"tampered".to_vec();
        assert_eq!(block.validate_standalone(), Err(ChainError::BadTxRoot));
    }

    #[test]
    fn tampered_header_breaks_pow_with_high_probability() {
        let mut block = Block::mine(Digest::ZERO, 0, vec![], 0, 12);
        block.header.timestamp_ms += 1;
        // After changing the timestamp the old nonce almost surely fails a
        // 12-bit target (probability 2^-12 to still pass).
        assert_eq!(
            block.validate_standalone(),
            Err(ChainError::InsufficientWork)
        );
    }

    #[test]
    fn empty_block_root_is_empty_merkle_root() {
        let block = Block::mine(Digest::ZERO, 0, vec![], 0, 0);
        assert_eq!(block.header.tx_root, drams_crypto::merkle::empty_root());
    }

    #[test]
    fn codec_round_trip() {
        let block = Block::mine(Digest::of(b"parent"), 7, sample_txs(2), 42, 4);
        let bytes = block.to_canonical_bytes();
        let back = Block::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.hash(), block.hash());
    }

    #[test]
    fn wire_len_grows_with_payloads() {
        let small = Block::mine(Digest::ZERO, 0, sample_txs(1), 0, 0);
        let big = Block::mine(Digest::ZERO, 0, sample_txs(8), 0, 0);
        assert!(big.wire_len() > small.wire_len());
    }
}
