//! Blocks and proof-of-work mining.

use crate::error::ChainError;
use crate::tx::Transaction;
use drams_crypto::codec::{decode_seq, Decode, Encode, Reader, Writer};
use drams_crypto::merkle::{self, MerkleTree};
use drams_crypto::sha256::Digest;
use drams_faas::par;
use serde::{Deserialize, Serialize};

/// A block hash.
pub type BlockHash = Digest;

/// Block header: everything that is hashed for proof-of-work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Hash of the parent block ([`Digest::ZERO`] for genesis).
    pub parent: BlockHash,
    /// Height (genesis = 0).
    pub height: u64,
    /// Merkle root over the transaction ids.
    pub tx_root: Digest,
    /// Millisecond timestamp (simulation or wall clock).
    pub timestamp_ms: u64,
    /// Required leading zero bits of the block hash — the tunable PoW
    /// parameter of the paper's private-chain design (§III).
    pub difficulty_bits: u32,
    /// Proof-of-work nonce.
    pub nonce: u64,
}

impl BlockHeader {
    /// The block hash (SHA-256 of the canonical header encoding).
    #[must_use]
    pub fn hash(&self) -> BlockHash {
        self.canonical_digest()
    }

    /// True when the hash meets the declared difficulty.
    #[must_use]
    pub fn meets_difficulty(&self) -> bool {
        self.hash().leading_zero_bits() >= self.difficulty_bits
    }
}

impl Encode for BlockHeader {
    fn encode(&self, w: &mut Writer) {
        self.parent.encode(w);
        w.put_u64(self.height);
        self.tx_root.encode(w);
        w.put_u64(self.timestamp_ms);
        w.put_u32(self.difficulty_bits);
        w.put_u64(self.nonce);
    }
}

impl Decode for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, drams_crypto::CryptoError> {
        Ok(BlockHeader {
            parent: Digest::decode(r)?,
            height: r.get_u64()?,
            tx_root: Digest::decode(r)?,
            timestamp_ms: r.get_u64()?,
            difficulty_bits: r.get_u32()?,
            nonce: r.get_u64()?,
        })
    }
}

/// A full block: header plus transaction body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The mined header.
    pub header: BlockHeader,
    /// Included transactions, in execution order.
    pub transactions: Vec<Transaction>,
}

/// Minimum transaction count before block hashing/verification fans out
/// across [`drams_faas::par`] workers: below this, thread-spawn overhead
/// exceeds the hash/exponentiation work being split.
const PAR_MIN_TXS: usize = 32;

impl Block {
    /// Computes the Merkle root over a transaction list.
    ///
    /// Leaf hashing (one SHA-256 of each transaction's canonical bytes)
    /// dominates and is pure per-transaction work, so wide blocks fan it
    /// out across [`drams_faas::par`] workers; the tree is then assembled
    /// level by level with [`drams_crypto::merkle::hash_level_chunk`]
    /// over pair-aligned chunks. Results merge in submission order, so
    /// the root is identical at any worker count.
    #[must_use]
    pub fn compute_tx_root(transactions: &[Transaction]) -> Digest {
        let mut level: Vec<Digest> = par::map(transactions, PAR_MIN_TXS, Transaction::id);
        if level.len() <= 1 {
            return MerkleTree::from_leaf_hashes(level).root();
        }
        while level.len() > 1 {
            let pair_count = level.len() / 2;
            let (paired, rest) = level.split_at(pair_count * 2);
            let mut next: Vec<Digest> = if pair_count >= PAR_MIN_TXS {
                // One pair-aligned chunk per worker; the trailing odd
                // node is promoted unchanged as in the serial builder.
                let ranges = par::chunk_ranges(pair_count, par::workers());
                let chunks: Vec<&[Digest]> = ranges
                    .iter()
                    .map(|r| &paired[r.start * 2..r.end * 2])
                    .collect();
                par::map(&chunks, 2, |c| merkle::hash_level_chunk(c))
                    .into_iter()
                    .flatten()
                    .collect()
            } else {
                merkle::hash_level_chunk(paired)
            };
            next.extend_from_slice(rest);
            level = next;
        }
        level[0]
    }

    /// Assembles and mines a block: iterates the nonce until the header
    /// hash has `difficulty_bits` leading zeros. This performs *real*
    /// hashing work — the log-size and PoW experiments (E1/E2) measure it.
    #[must_use]
    pub fn mine(
        parent: BlockHash,
        height: u64,
        transactions: Vec<Transaction>,
        timestamp_ms: u64,
        difficulty_bits: u32,
    ) -> Block {
        let tx_root = Self::compute_tx_root(&transactions);
        let mut header = BlockHeader {
            parent,
            height,
            tx_root,
            timestamp_ms,
            difficulty_bits,
            nonce: 0,
        };
        while !header.meets_difficulty() {
            header.nonce = header.nonce.wrapping_add(1);
        }
        Block {
            header,
            transactions,
        }
    }

    /// The block hash.
    #[must_use]
    pub fn hash(&self) -> BlockHash {
        self.header.hash()
    }

    /// Structural self-validation: PoW and Merkle root. Chain-contextual
    /// checks (parent, height, expected difficulty) live in
    /// [`crate::chain::Blockchain::import`].
    ///
    /// # Errors
    ///
    /// [`ChainError::InsufficientWork`] or [`ChainError::BadTxRoot`].
    pub fn validate_standalone(&self) -> Result<(), ChainError> {
        if !self.header.meets_difficulty() {
            return Err(ChainError::InsufficientWork);
        }
        if Self::compute_tx_root(&self.transactions) != self.header.tx_root {
            return Err(ChainError::BadTxRoot);
        }
        Ok(())
    }

    /// Verifies every transaction signature in one batched pass.
    ///
    /// Uses [`drams_crypto::schnorr::batch_verify`], which amortises
    /// per-key window tables across the block — blocks are dominated by
    /// a handful of Logging Interface identities, so this is the hot
    /// import path. Wide blocks split the batch into one contiguous
    /// chunk per [`drams_faas::par`] worker, verify chunks concurrently,
    /// and merge verdicts with
    /// [`drams_crypto::schnorr::merge_chunk_verdicts`] — exactly
    /// equivalent to verifying each transaction individually, at any
    /// worker count.
    ///
    /// # Errors
    ///
    /// [`ChainError::BadSignature`] if any transaction fails.
    pub fn verify_signatures(&self) -> Result<(), ChainError> {
        if self.transactions.is_empty() {
            return Ok(());
        }
        let messages: Vec<Vec<u8>> =
            par::map(&self.transactions, PAR_MIN_TXS, Transaction::signing_bytes);
        let batch: Vec<_> = self
            .transactions
            .iter()
            .zip(&messages)
            .map(|(tx, msg)| (tx.sender, msg.as_slice(), tx.signature))
            .collect();
        if batch.len() < PAR_MIN_TXS {
            return drams_crypto::schnorr::batch_verify(&batch)
                .map_err(|_| ChainError::BadSignature);
        }
        let ranges = par::chunk_ranges(batch.len(), par::workers());
        let chunks: Vec<(usize, &[_])> = ranges
            .iter()
            .map(|r| (r.start, &batch[r.start..r.end]))
            .collect();
        let verdicts = par::map(&chunks, 2, |&(start, chunk)| {
            (start, drams_crypto::schnorr::batch_verify(chunk))
        });
        drams_crypto::schnorr::merge_chunk_verdicts(verdicts).map_err(|_| ChainError::BadSignature)
    }

    /// Total serialized size in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.to_canonical_bytes().len()
    }
}

impl Encode for Block {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        w.put_varint(self.transactions.len() as u64);
        for tx in &self.transactions {
            tx.encode(w);
        }
    }
}

impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, drams_crypto::CryptoError> {
        let header = BlockHeader::decode(r)?;
        let transactions = decode_seq(r)?;
        Ok(Block {
            header,
            transactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::schnorr::Keypair;

    fn sample_txs(n: usize) -> Vec<Transaction> {
        let kp = Keypair::from_seed(b"block-tests");
        (0..n)
            .map(|i| Transaction::new_signed(&kp, i as u64, "monitor", "store", vec![i as u8; 32]))
            .collect()
    }

    #[test]
    fn mining_meets_difficulty() {
        let block = Block::mine(Digest::ZERO, 0, sample_txs(3), 1000, 8);
        assert!(block.header.meets_difficulty());
        assert!(block.hash().leading_zero_bits() >= 8);
        block.validate_standalone().unwrap();
    }

    #[test]
    fn difficulty_zero_accepts_first_nonce() {
        let block = Block::mine(Digest::ZERO, 0, vec![], 0, 0);
        assert_eq!(block.header.nonce, 0);
    }

    #[test]
    fn tampered_tx_breaks_root() {
        let mut block = Block::mine(Digest::ZERO, 0, sample_txs(2), 0, 4);
        block.transactions[0].payload = b"tampered".to_vec();
        assert_eq!(block.validate_standalone(), Err(ChainError::BadTxRoot));
    }

    #[test]
    fn tampered_header_breaks_pow_with_high_probability() {
        let mut block = Block::mine(Digest::ZERO, 0, vec![], 0, 12);
        block.header.timestamp_ms += 1;
        // After changing the timestamp the old nonce almost surely fails a
        // 12-bit target (probability 2^-12 to still pass).
        assert_eq!(
            block.validate_standalone(),
            Err(ChainError::InsufficientWork)
        );
    }

    #[test]
    fn empty_block_root_is_empty_merkle_root() {
        let block = Block::mine(Digest::ZERO, 0, vec![], 0, 0);
        assert_eq!(block.header.tx_root, drams_crypto::merkle::empty_root());
    }

    #[test]
    fn codec_round_trip() {
        let block = Block::mine(Digest::of(b"parent"), 7, sample_txs(2), 42, 4);
        let bytes = block.to_canonical_bytes();
        let back = Block::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.hash(), block.hash());
    }

    #[test]
    fn wire_len_grows_with_payloads() {
        let small = Block::mine(Digest::ZERO, 0, sample_txs(1), 0, 0);
        let big = Block::mine(Digest::ZERO, 0, sample_txs(8), 0, 0);
        assert!(big.wire_len() > small.wire_len());
    }

    #[test]
    fn tx_root_and_verification_are_worker_count_invisible() {
        // Wide enough to cross PAR_MIN_TXS so the parallel paths engage.
        let txs = sample_txs(PAR_MIN_TXS * 2 + 5);
        let mut bad = txs.clone();
        bad[40].payload = b"forged".to_vec(); // signature no longer covers payload
        let saved = par::workers();
        let mut roots = Vec::new();
        let mut verdicts = Vec::new();
        for w in [1usize, 2, 4, 8] {
            par::set_workers(w);
            roots.push(Block::compute_tx_root(&txs));
            let block = Block {
                header: BlockHeader {
                    parent: Digest::ZERO,
                    height: 0,
                    tx_root: Block::compute_tx_root(&txs),
                    timestamp_ms: 0,
                    difficulty_bits: 0,
                    nonce: 0,
                },
                transactions: txs.clone(),
            };
            verdicts.push(block.verify_signatures().is_ok());
            let bad_block = Block {
                transactions: bad.clone(),
                ..block
            };
            assert_eq!(
                bad_block.verify_signatures(),
                Err(ChainError::BadSignature),
                "workers={w}"
            );
        }
        par::set_workers(saved);
        assert!(roots.windows(2).all(|p| p[0] == p[1]));
        assert!(verdicts.iter().all(|&v| v));
    }
}
