//! Private smart-contract proof-of-work blockchain for DRAMS.
//!
//! The paper stores access logs and runs monitoring checks on a
//! smart-contract blockchain deployed as a *private* chain whose PoW
//! parameters are tunable (§III). This crate is that substrate, built from
//! scratch:
//!
//! * [`tx`] — Schnorr-signed contract-invocation transactions.
//! * [`block`] — blocks, Merkle transaction roots and real PoW mining.
//! * [`chain`] — validation, heaviest-chain fork choice with reorgs, and
//!   the ±1-bit difficulty retarget rule.
//! * [`mempool`] — FIFO pending pool.
//! * [`contract`] — the deterministic smart-contract runtime (journaled
//!   storage, event log) hosting the DRAMS monitor contract.
//! * [`node`] — a full node gluing all of the above.
//! * [`net`] — a virtual-time gossip simulation for propagation and
//!   stale-rate experiments.
//! * [`fork`] — attacker fork analysis (Nakamoto analytic + Monte Carlo)
//!   quantifying the paper's "lightweight PoW ⇒ weak integrity" claim.
//!
//! # Example
//!
//! ```
//! use drams_chain::{node::Node, chain::ChainConfig, contract::KvStoreContract};
//! use drams_crypto::schnorr::Keypair;
//!
//! # fn main() -> Result<(), drams_chain::error::ChainError> {
//! let mut node = Node::new(ChainConfig { initial_difficulty_bits: 4, ..Default::default() });
//! node.register_contract(Box::new(KvStoreContract));
//! let li = Keypair::from_seed(b"logging-interface");
//! let tx = node.submit_call(&li, "kvstore", "put", b"encrypted log".to_vec())?;
//! node.mine_block(1_000)?;
//! assert_eq!(node.chain().confirmations(&tx), Some(1));
//! # Ok(())
//! # }
//! ```
//!
//! Durability: the node is storage-agnostic, but accepts a write-ahead
//! journal ([`node::NodeJournal`]) recording every accepted transaction
//! and imported block; `drams_store::persist` implements it over a
//! segmented WAL and rebuilds a crashed node — chain, contract state
//! *and* mempool — by replay.

#![warn(missing_docs)]

pub mod block;
pub mod chain;
pub mod contract;
pub mod error;
pub mod fork;
pub mod mempool;
pub mod net;
pub mod node;
pub mod tx;

pub use block::{Block, BlockHash, BlockHeader};
pub use chain::{Blockchain, ChainConfig, ImportOutcome};
pub use contract::{ContractHost, Event, ExecutionContext, SmartContract, Storage, TxStatus};
pub use error::ChainError;
pub use mempool::Mempool;
pub use node::Node;
pub use tx::{Transaction, TxId};
