//! Error types for the blockchain substrate.

use std::fmt;

/// Errors from chain validation, import and transaction handling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// The block's parent is not known to this chain.
    UnknownParent,
    /// The proof-of-work hash does not meet the required difficulty.
    InsufficientWork,
    /// The block declares a different difficulty than the chain requires
    /// at its height.
    WrongDifficulty {
        /// Difficulty the block declares.
        declared: u32,
        /// Difficulty the chain requires.
        required: u32,
    },
    /// The block's height is not parent height + 1.
    WrongHeight,
    /// The transaction Merkle root does not match the block body.
    BadTxRoot,
    /// A transaction signature failed verification.
    BadSignature,
    /// A transaction was already included or already pending.
    DuplicateTransaction,
    /// A transaction nonce does not follow the sender's account nonce.
    NonceMismatch {
        /// Nonce carried by the transaction.
        got: u64,
        /// Nonce the account state expects.
        expected: u64,
    },
    /// The target smart contract is not registered.
    UnknownContract(String),
    /// Contract execution failed.
    Contract(String),
    /// A wire encoding was malformed.
    Malformed(String),
    /// The block exceeds the configured maximum size.
    BlockTooLarge {
        /// Number of transactions in the block.
        txs: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The node's write-ahead journal rejected a record — the accepted
    /// transaction or block could not be made durable.
    Journal(String),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownParent => write!(f, "unknown parent block"),
            ChainError::InsufficientWork => write!(f, "proof-of-work below difficulty target"),
            ChainError::WrongDifficulty { declared, required } => write!(
                f,
                "wrong difficulty: declared {declared} bits, required {required} bits"
            ),
            ChainError::WrongHeight => write!(f, "block height does not extend its parent"),
            ChainError::BadTxRoot => write!(f, "transaction merkle root mismatch"),
            ChainError::BadSignature => write!(f, "invalid transaction signature"),
            ChainError::DuplicateTransaction => write!(f, "duplicate transaction"),
            ChainError::NonceMismatch { got, expected } => {
                write!(f, "nonce mismatch: got {got}, expected {expected}")
            }
            ChainError::UnknownContract(name) => write!(f, "unknown contract `{name}`"),
            ChainError::Contract(msg) => write!(f, "contract execution failed: {msg}"),
            ChainError::Malformed(what) => write!(f, "malformed encoding: {what}"),
            ChainError::BlockTooLarge { txs, max } => {
                write!(f, "block has {txs} transactions, maximum is {max}")
            }
            ChainError::Journal(msg) => write!(f, "node journal write failed: {msg}"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<drams_crypto::CryptoError> for ChainError {
    fn from(e: drams_crypto::CryptoError) -> Self {
        match e {
            drams_crypto::CryptoError::InvalidSignature => ChainError::BadSignature,
            other => ChainError::Malformed(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_lowercase() {
        let errors = [
            ChainError::UnknownParent,
            ChainError::InsufficientWork,
            ChainError::WrongDifficulty {
                declared: 1,
                required: 2,
            },
            ChainError::NonceMismatch {
                got: 5,
                expected: 4,
            },
            ChainError::UnknownContract("x".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crypto_error_converts() {
        let e: ChainError = drams_crypto::CryptoError::InvalidSignature.into();
        assert_eq!(e, ChainError::BadSignature);
        let e: ChainError = drams_crypto::CryptoError::Malformed("x".into()).into();
        assert!(matches!(e, ChainError::Malformed(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChainError>();
    }
}
