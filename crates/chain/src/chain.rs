//! The blockchain store: validation, fork choice and difficulty retarget.

use crate::block::{Block, BlockHash};
use crate::error::ChainError;
use crate::tx::TxId;
use drams_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tunable parameters of the private chain — the paper's §III observes
/// that on a private deployment "all PoW parameters can be dynamically
/// tuned according to the needs".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Difficulty (leading zero bits) for the early chain.
    pub initial_difficulty_bits: u32,
    /// Blocks between difficulty retargets; 0 disables retargeting.
    pub retarget_interval: u64,
    /// Desired inter-block time used by the retarget rule.
    pub target_block_ms: u64,
    /// Maximum transactions per block.
    pub max_block_txs: usize,
    /// Verify transaction signatures at import (disable only in
    /// micro-benchmarks that isolate hashing cost).
    pub verify_signatures: bool,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            initial_difficulty_bits: 8,
            retarget_interval: 16,
            target_block_ms: 1_000,
            max_block_txs: 256,
            verify_signatures: true,
        }
    }
}

/// How an imported block changed the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportOutcome {
    /// The block extended the current tip.
    ExtendedTip,
    /// The block landed on a side chain; the tip is unchanged.
    SideChain,
    /// The block made a side chain the heaviest: `depth` main-chain blocks
    /// were replaced.
    Reorg {
        /// Number of blocks abandoned from the old main chain.
        depth: u64,
    },
    /// The block was already known.
    AlreadyKnown,
}

#[derive(Debug, Clone)]
struct StoredBlock {
    block: Block,
    total_work: u128,
}

/// An in-memory blockchain with longest-(heaviest-)chain fork choice.
#[derive(Debug)]
pub struct Blockchain {
    config: ChainConfig,
    blocks: HashMap<BlockHash, StoredBlock>,
    genesis: BlockHash,
    tip: BlockHash,
}

impl Blockchain {
    /// Creates a chain with a deterministic genesis block.
    #[must_use]
    pub fn new(config: ChainConfig) -> Self {
        // Genesis carries no work (difficulty 0) and a fixed timestamp, so
        // every node derives the identical genesis hash.
        let genesis_block = Block::mine(Digest::ZERO, 0, Vec::new(), 0, 0);
        let genesis = genesis_block.hash();
        let mut blocks = HashMap::new();
        blocks.insert(
            genesis,
            StoredBlock {
                block: genesis_block,
                total_work: 0,
            },
        );
        Blockchain {
            config,
            blocks,
            genesis,
            tip: genesis,
        }
    }

    /// The chain configuration.
    #[must_use]
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// The genesis hash.
    #[must_use]
    pub fn genesis_hash(&self) -> BlockHash {
        self.genesis
    }

    /// The current tip hash.
    #[must_use]
    pub fn tip_hash(&self) -> BlockHash {
        self.tip
    }

    /// The current tip header.
    #[must_use]
    pub fn tip_header(&self) -> &crate::block::BlockHeader {
        &self.blocks[&self.tip].block.header
    }

    /// Looks a block up by hash.
    #[must_use]
    pub fn block(&self, hash: &BlockHash) -> Option<&Block> {
        self.blocks.get(hash).map(|s| &s.block)
    }

    /// Total number of blocks stored (including side chains).
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Headers of **every** stored block — main chain and side chains —
    /// in deterministic (height, hash) order. This is the auditor's view:
    /// a fork sweep needs the stale siblings that
    /// [`Blockchain::main_chain_hashes`] deliberately omits.
    #[must_use]
    pub fn all_headers(&self) -> Vec<crate::block::BlockHeader> {
        let mut headers: Vec<crate::block::BlockHeader> = self
            .blocks
            .values()
            .map(|s| s.block.header.clone())
            .collect();
        headers.sort_by_key(|h| (h.height, *h.hash().as_bytes()));
        headers
    }

    /// Always false — a chain has at least its genesis.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The difficulty required of a child of `parent`.
    ///
    /// Retarget rule: every `retarget_interval` blocks, compare the actual
    /// elapsed time over the last window with the expected one; adjust by
    /// ±1 bit when off by more than 2×, clamped to `[1, 40]`.
    ///
    /// # Errors
    ///
    /// [`ChainError::UnknownParent`] when `parent` is not stored.
    pub fn required_difficulty(&self, parent: &BlockHash) -> Result<u32, ChainError> {
        let stored = self.blocks.get(parent).ok_or(ChainError::UnknownParent)?;
        let parent_header = &stored.block.header;
        if parent_header.height == 0 {
            return Ok(self.config.initial_difficulty_bits);
        }
        let child_height = parent_header.height + 1;
        let interval = self.config.retarget_interval;
        if interval == 0 || child_height % interval != 0 {
            return Ok(parent_header.difficulty_bits);
        }
        // Walk back `interval - 1` blocks from the parent to find the
        // window start.
        let mut cursor = *parent;
        for _ in 0..interval - 1 {
            cursor = self.blocks[&cursor].block.header.parent;
        }
        let window_start = &self.blocks[&cursor].block.header;
        let actual = parent_header
            .timestamp_ms
            .saturating_sub(window_start.timestamp_ms);
        let expected = interval.saturating_mul(self.config.target_block_ms);
        let current = parent_header.difficulty_bits;
        let adjusted = if actual < expected / 2 {
            current + 1
        } else if actual > expected * 2 {
            current.saturating_sub(1)
        } else {
            current
        };
        Ok(adjusted.clamp(1, 40))
    }

    /// Validates and imports a block.
    ///
    /// # Errors
    ///
    /// Any [`ChainError`] from structural or contextual validation.
    pub fn import(&mut self, block: Block) -> Result<ImportOutcome, ChainError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Ok(ImportOutcome::AlreadyKnown);
        }
        let parent_work;
        let parent_height;
        {
            let parent = self
                .blocks
                .get(&block.header.parent)
                .ok_or(ChainError::UnknownParent)?;
            parent_work = parent.total_work;
            parent_height = parent.block.header.height;
        }
        if block.header.height != parent_height + 1 {
            return Err(ChainError::WrongHeight);
        }
        if block.transactions.len() > self.config.max_block_txs {
            return Err(ChainError::BlockTooLarge {
                txs: block.transactions.len(),
                max: self.config.max_block_txs,
            });
        }
        let required = self.required_difficulty(&block.header.parent)?;
        if block.header.difficulty_bits != required {
            return Err(ChainError::WrongDifficulty {
                declared: block.header.difficulty_bits,
                required,
            });
        }
        block.validate_standalone()?;
        if self.config.verify_signatures {
            // One batched pass over the whole block (shared per-key
            // tables) instead of a per-transaction verification loop.
            block.verify_signatures()?;
        }

        let total_work = parent_work + (1u128 << block.header.difficulty_bits.min(127));
        let extends_tip = block.header.parent == self.tip;
        let old_tip = self.tip;
        self.blocks.insert(hash, StoredBlock { block, total_work });
        if total_work > self.blocks[&self.tip].total_work {
            self.tip = hash;
            if extends_tip {
                Ok(ImportOutcome::ExtendedTip)
            } else {
                let depth = self.reorg_depth(&old_tip, &hash);
                Ok(ImportOutcome::Reorg { depth })
            }
        } else {
            Ok(ImportOutcome::SideChain)
        }
    }

    /// How many blocks of the old main chain were abandoned when `new_tip`
    /// took over from `old_tip`.
    fn reorg_depth(&self, old_tip: &BlockHash, new_tip: &BlockHash) -> u64 {
        // Find the common ancestor by walking both branches back to equal
        // heights, then in lockstep.
        let mut a = *old_tip;
        let mut b = *new_tip;
        let height = |h: &BlockHash| self.blocks[h].block.header.height;
        while height(&a) > height(&b) {
            a = self.blocks[&a].block.header.parent;
        }
        while height(&b) > height(&a) {
            b = self.blocks[&b].block.header.parent;
        }
        let mut depth = 0;
        while a != b {
            a = self.blocks[&a].block.header.parent;
            b = self.blocks[&b].block.header.parent;
            depth += 1;
        }
        // Abandoned blocks: from the ancestor to the old tip.
        height(old_tip) - height(&a) + if depth > 0 { 0 } else { 0 }
    }

    /// Hashes of the main chain, genesis first.
    #[must_use]
    pub fn main_chain_hashes(&self) -> Vec<BlockHash> {
        let mut out = Vec::new();
        let mut cursor = self.tip;
        loop {
            out.push(cursor);
            if cursor == self.genesis {
                break;
            }
            cursor = self.blocks[&cursor].block.header.parent;
        }
        out.reverse();
        out
    }

    /// The main-chain block at `height`, if any.
    #[must_use]
    pub fn block_at_height(&self, height: u64) -> Option<&Block> {
        let tip_height = self.tip_header().height;
        if height > tip_height {
            return None;
        }
        let mut cursor = self.tip;
        for _ in 0..tip_height - height {
            cursor = self.blocks[&cursor].block.header.parent;
        }
        Some(&self.blocks[&cursor].block)
    }

    /// Finds a transaction on the main chain, returning `(block hash,
    /// height)`.
    #[must_use]
    pub fn find_tx(&self, tx_id: &TxId) -> Option<(BlockHash, u64)> {
        let mut cursor = self.tip;
        loop {
            let stored = &self.blocks[&cursor];
            if stored.block.transactions.iter().any(|tx| tx.id() == *tx_id) {
                return Some((cursor, stored.block.header.height));
            }
            if cursor == self.genesis {
                return None;
            }
            cursor = stored.block.header.parent;
        }
    }

    /// Confirmations of the block containing `tx_id` (tip block = 1).
    #[must_use]
    pub fn confirmations(&self, tx_id: &TxId) -> Option<u64> {
        let (_, height) = self.find_tx(tx_id)?;
        Some(self.tip_header().height - height + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transaction;
    use drams_crypto::schnorr::Keypair;

    fn config(bits: u32) -> ChainConfig {
        ChainConfig {
            initial_difficulty_bits: bits,
            retarget_interval: 4,
            target_block_ms: 1_000,
            max_block_txs: 8,
            verify_signatures: true,
        }
    }

    fn extend(chain: &mut Blockchain, txs: Vec<Transaction>, ts: u64) -> Block {
        let tip = chain.tip_hash();
        let height = chain.tip_header().height + 1;
        let bits = chain.required_difficulty(&tip).unwrap();
        let block = Block::mine(tip, height, txs, ts, bits);
        chain.import(block.clone()).unwrap();
        block
    }

    #[test]
    fn genesis_is_deterministic() {
        let a = Blockchain::new(config(4));
        let b = Blockchain::new(config(4));
        assert_eq!(a.genesis_hash(), b.genesis_hash());
        assert_eq!(a.tip_header().height, 0);
    }

    #[test]
    fn extends_tip_linearly() {
        let mut chain = Blockchain::new(config(4));
        for i in 1..=5u64 {
            extend(&mut chain, vec![], i * 1_000);
            assert_eq!(chain.tip_header().height, i);
        }
        assert_eq!(chain.main_chain_hashes().len(), 6);
    }

    #[test]
    fn rejects_unknown_parent() {
        let mut chain = Blockchain::new(config(0));
        let orphan = Block::mine(Digest::of(b"nowhere"), 1, vec![], 0, 0);
        assert_eq!(chain.import(orphan), Err(ChainError::UnknownParent));
    }

    #[test]
    fn rejects_wrong_height() {
        let mut chain = Blockchain::new(config(0));
        let bad = Block::mine(chain.genesis_hash(), 5, vec![], 0, 0);
        assert_eq!(chain.import(bad), Err(ChainError::WrongHeight));
    }

    #[test]
    fn rejects_wrong_difficulty() {
        let mut chain = Blockchain::new(config(4));
        let bad = Block::mine(chain.genesis_hash(), 1, vec![], 0, 2);
        assert_eq!(
            chain.import(bad),
            Err(ChainError::WrongDifficulty {
                declared: 2,
                required: 4
            })
        );
    }

    #[test]
    fn rejects_bad_signature() {
        let mut chain = Blockchain::new(config(0));
        let kp = Keypair::from_seed(b"chain-tests");
        let mut tx = Transaction::new_signed(&kp, 0, "c", "m", vec![]);
        tx.payload = b"tampered".to_vec();
        let block = Block::mine(chain.genesis_hash(), 1, vec![tx], 0, 0);
        assert_eq!(chain.import(block), Err(ChainError::BadSignature));
    }

    #[test]
    fn rejects_oversized_block() {
        let mut chain = Blockchain::new(config(0));
        let kp = Keypair::from_seed(b"chain-tests");
        let txs: Vec<_> = (0..9)
            .map(|i| Transaction::new_signed(&kp, i, "c", "m", vec![]))
            .collect();
        let block = Block::mine(chain.genesis_hash(), 1, txs, 0, 0);
        assert!(matches!(
            chain.import(block),
            Err(ChainError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn duplicate_import_is_already_known() {
        let mut chain = Blockchain::new(config(0));
        let block = Block::mine(chain.genesis_hash(), 1, vec![], 0, 0);
        assert_eq!(
            chain.import(block.clone()).unwrap(),
            ImportOutcome::ExtendedTip
        );
        assert_eq!(chain.import(block).unwrap(), ImportOutcome::AlreadyKnown);
    }

    #[test]
    fn side_chain_then_reorg() {
        let mut chain = Blockchain::new(config(2));
        let a1 = extend(&mut chain, vec![], 1_000); // main: a1
                                                    // Build a fork from genesis.
        let b1 = Block::mine(chain.genesis_hash(), 1, vec![], 1_500, 2);
        assert_eq!(chain.import(b1.clone()).unwrap(), ImportOutcome::SideChain);
        assert_eq!(chain.tip_hash(), a1.hash());
        // Extend the fork past the main chain.
        let bits = chain.required_difficulty(&b1.hash()).unwrap();
        let b2 = Block::mine(b1.hash(), 2, vec![], 2_000, bits);
        match chain.import(b2.clone()).unwrap() {
            ImportOutcome::Reorg { depth } => assert_eq!(depth, 1),
            other => panic!("expected reorg, got {other:?}"),
        }
        assert_eq!(chain.tip_hash(), b2.hash());
        assert_eq!(chain.main_chain_hashes().len(), 3);
    }

    #[test]
    fn retarget_raises_difficulty_when_blocks_too_fast() {
        let mut chain = Blockchain::new(config(2));
        // Mine 4 blocks with tiny timestamps gaps (much faster than the
        // 1000 ms target); the retarget at height 4 must add a bit.
        for i in 1..=3u64 {
            extend(&mut chain, vec![], i * 10);
        }
        let required = chain.required_difficulty(&chain.tip_hash()).unwrap();
        assert_eq!(required, 3);
    }

    #[test]
    fn retarget_lowers_difficulty_when_blocks_too_slow() {
        let mut chain = Blockchain::new(config(4));
        for i in 1..=3u64 {
            extend(&mut chain, vec![], i * 10_000);
        }
        let required = chain.required_difficulty(&chain.tip_hash()).unwrap();
        assert_eq!(required, 3);
    }

    #[test]
    fn retarget_disabled_keeps_difficulty() {
        let mut chain = Blockchain::new(ChainConfig {
            initial_difficulty_bits: 3,
            retarget_interval: 0,
            ..ChainConfig::default()
        });
        for i in 1..=6u64 {
            extend(&mut chain, vec![], i);
            assert_eq!(chain.tip_header().difficulty_bits, 3);
        }
    }

    #[test]
    fn find_tx_and_confirmations() {
        let mut chain = Blockchain::new(config(0));
        let kp = Keypair::from_seed(b"chain-tests");
        let tx = Transaction::new_signed(&kp, 0, "c", "m", vec![]);
        let id = tx.id();
        extend(&mut chain, vec![tx], 1_000);
        assert_eq!(chain.confirmations(&id), Some(1));
        extend(&mut chain, vec![], 2_000);
        extend(&mut chain, vec![], 3_000);
        assert_eq!(chain.confirmations(&id), Some(3));
        assert_eq!(chain.confirmations(&Digest::of(b"ghost")), None);
    }

    #[test]
    fn block_at_height_walks_main_chain() {
        let mut chain = Blockchain::new(config(0));
        let b1 = extend(&mut chain, vec![], 1);
        let _b2 = extend(&mut chain, vec![], 2);
        assert_eq!(chain.block_at_height(1).unwrap().hash(), b1.hash());
        assert_eq!(
            chain.block_at_height(0).unwrap().hash(),
            chain.genesis_hash()
        );
        assert!(chain.block_at_height(9).is_none());
    }
}
