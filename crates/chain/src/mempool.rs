//! Pending-transaction pool.

use crate::error::ChainError;
use crate::tx::{Transaction, TxId};
use drams_crypto::schnorr::PublicKey;
use std::collections::{HashMap, VecDeque};

/// A FIFO mempool with duplicate suppression.
///
/// Ordering is arrival order, which combined with per-sender sequential
/// nonces gives deterministic execution order within each block.
///
/// The queue is a `VecDeque` (taking the front of the pool no longer
/// shifts every remaining transaction) and an id→sender index map backs
/// O(1) membership checks and per-sender pending counts — the paths the
/// Logging Interfaces hit on every submission and the miner on every
/// block.
#[derive(Debug, Default)]
pub struct Mempool {
    queue: VecDeque<Transaction>,
    /// Pending tx id → sender. The map is the source of truth for
    /// membership; the sender lets `prune` maintain the per-sender counts
    /// without rescanning the queue.
    index: HashMap<TxId, PublicKey>,
    /// Pending transactions per sender (for nonce assignment).
    by_sender: HashMap<PublicKey, usize>,
}

impl Mempool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn index_insert(&mut self, id: TxId, sender: PublicKey) -> bool {
        if self.index.contains_key(&id) {
            return false;
        }
        self.index.insert(id, sender);
        *self.by_sender.entry(sender).or_insert(0) += 1;
        true
    }

    fn index_remove(&mut self, id: &TxId) {
        if let Some(sender) = self.index.remove(id) {
            if let Some(count) = self.by_sender.get_mut(&sender) {
                *count -= 1;
                if *count == 0 {
                    self.by_sender.remove(&sender);
                }
            }
        }
    }

    /// Adds a transaction.
    ///
    /// # Errors
    ///
    /// [`ChainError::DuplicateTransaction`] if the id is already pending.
    pub fn add(&mut self, tx: Transaction) -> Result<TxId, ChainError> {
        let id = tx.id();
        if !self.index_insert(id, tx.sender) {
            return Err(ChainError::DuplicateTransaction);
        }
        self.queue.push_back(tx);
        Ok(id)
    }

    /// Takes up to `n` transactions in arrival order.
    pub fn take(&mut self, n: usize) -> Vec<Transaction> {
        let n = n.min(self.queue.len());
        let taken: Vec<Transaction> = self.queue.drain(..n).collect();
        for tx in &taken {
            self.index_remove(&tx.id());
        }
        taken
    }

    /// Removes any pending transactions whose ids are in `included`
    /// (called after importing a block mined elsewhere).
    pub fn prune<'a>(&mut self, included: impl IntoIterator<Item = &'a TxId>) {
        let mut removed = false;
        for id in included {
            if self.index.contains_key(id) {
                self.index_remove(id);
                removed = true;
            }
        }
        if removed {
            let index = &self.index;
            self.queue.retain(|tx| index.contains_key(&tx.id()));
        }
    }

    /// Re-queues transactions (e.g. returned by an abandoned fork) at the
    /// front, preserving their relative order; duplicates are dropped.
    pub fn requeue_front(&mut self, txs: Vec<Transaction>) {
        for tx in txs.into_iter().rev() {
            if self.index_insert(tx.id(), tx.sender) {
                self.queue.push_front(tx);
            }
        }
    }

    /// Number of pending transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a transaction is pending.
    #[must_use]
    pub fn contains(&self, id: &TxId) -> bool {
        self.index.contains_key(id)
    }

    /// Iterates the pending transactions in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.queue.iter()
    }

    /// Removes one pending transaction by id, returning it. The relative
    /// order of the remaining transactions is unchanged.
    pub fn remove(&mut self, id: &TxId) -> Option<Transaction> {
        if !self.index.contains_key(id) {
            return None;
        }
        self.index_remove(id);
        let pos = self.queue.iter().position(|tx| tx.id() == *id)?;
        self.queue.remove(pos)
    }

    /// Pending transactions from `sender` (used for nonce assignment).
    #[must_use]
    pub fn pending_from(&self, sender: &PublicKey) -> usize {
        self.by_sender.get(sender).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::schnorr::Keypair;

    fn tx(nonce: u64) -> Transaction {
        let kp = Keypair::from_seed(b"mempool-tests");
        Transaction::new_signed(&kp, nonce, "c", "m", vec![nonce as u8])
    }

    fn tx_from(seed: &[u8], nonce: u64) -> Transaction {
        let kp = Keypair::from_seed(seed);
        Transaction::new_signed(&kp, nonce, "c", "m", vec![nonce as u8])
    }

    #[test]
    fn fifo_order_preserved() {
        let mut pool = Mempool::new();
        for i in 0..5 {
            pool.add(tx(i)).unwrap();
        }
        let taken = pool.take(3);
        assert_eq!(taken.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(pool.len(), 2);
        assert!(!pool.contains(&taken[0].id()));
    }

    #[test]
    fn duplicates_rejected() {
        let mut pool = Mempool::new();
        pool.add(tx(0)).unwrap();
        assert_eq!(pool.add(tx(0)), Err(ChainError::DuplicateTransaction));
    }

    #[test]
    fn take_more_than_available() {
        let mut pool = Mempool::new();
        pool.add(tx(0)).unwrap();
        assert_eq!(pool.take(10).len(), 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn prune_removes_included() {
        let mut pool = Mempool::new();
        let a = pool.add(tx(0)).unwrap();
        pool.add(tx(1)).unwrap();
        pool.prune([&a]);
        assert_eq!(pool.len(), 1);
        assert!(!pool.contains(&a));
    }

    #[test]
    fn requeue_front_restores_order_without_duplicates() {
        let mut pool = Mempool::new();
        pool.add(tx(2)).unwrap();
        let orphaned = vec![tx(0), tx(1), tx(2)];
        pool.requeue_front(orphaned);
        let taken = pool.take(3);
        assert_eq!(taken.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn remove_extracts_one_tx_and_keeps_order() {
        let mut pool = Mempool::new();
        let ids: Vec<TxId> = (0..4).map(|n| pool.add(tx(n)).unwrap()).collect();
        let removed = pool.remove(&ids[1]).unwrap();
        assert_eq!(removed.nonce, 1);
        assert!(!pool.contains(&ids[1]));
        assert!(pool.remove(&ids[1]).is_none(), "double remove is a no-op");
        let kp = Keypair::from_seed(b"mempool-tests");
        assert_eq!(pool.pending_from(&kp.public()), 3);
        let order: Vec<u64> = pool.take(10).iter().map(|t| t.nonce).collect();
        assert_eq!(order, [0, 2, 3]);
    }

    #[test]
    fn pending_from_counts_sender() {
        let mut pool = Mempool::new();
        pool.add(tx(0)).unwrap();
        pool.add(tx(1)).unwrap();
        let kp = Keypair::from_seed(b"mempool-tests");
        assert_eq!(pool.pending_from(&kp.public()), 2);
        let other = Keypair::from_seed(b"someone-else");
        assert_eq!(pool.pending_from(&other.public()), 0);
    }

    /// The id index and sender counts must stay consistent with the queue
    /// across interleaved prune/requeue/take cycles.
    #[test]
    fn index_stays_consistent_across_prune_and_requeue() {
        let mut pool = Mempool::new();
        let a_txs: Vec<Transaction> = (0..4).map(|n| tx_from(b"sender-a", n)).collect();
        let b_txs: Vec<Transaction> = (0..3).map(|n| tx_from(b"sender-b", n)).collect();
        for tx in a_txs.iter().chain(&b_txs) {
            pool.add(tx.clone()).unwrap();
        }
        let a = Keypair::from_seed(b"sender-a").public();
        let b = Keypair::from_seed(b"sender-b").public();

        let check = |pool: &Mempool, expect_a: usize, expect_b: usize| {
            assert_eq!(pool.pending_from(&a), expect_a);
            assert_eq!(pool.pending_from(&b), expect_b);
            assert_eq!(pool.len(), expect_a + expect_b);
            // every queued tx is indexed, and nothing else is
            assert_eq!(pool.index.len(), pool.queue.len());
            for tx in &pool.queue {
                assert!(pool.contains(&tx.id()));
            }
        };
        check(&pool, 4, 3);

        // Prune one of each sender's transactions (as if mined elsewhere).
        pool.prune([&a_txs[1].id(), &b_txs[0].id()]);
        check(&pool, 3, 2);
        assert!(!pool.contains(&a_txs[1].id()));

        // Requeue an abandoned-fork mix: one pruned, one still pending
        // (dropped as duplicate), one never seen.
        pool.requeue_front(vec![
            a_txs[1].clone(),
            a_txs[2].clone(),
            tx_from(b"sender-b", 9),
        ]);
        check(&pool, 4, 3);
        let order: Vec<u64> = pool.queue.iter().map(|t| t.nonce).collect();
        assert_eq!(
            &order[..2],
            &[1, 9],
            "requeued txs sit at the front in order"
        );

        // Draining through take leaves an empty, consistent index.
        let drained = pool.take(7);
        assert_eq!(drained.len(), 7);
        check(&pool, 0, 0);
        assert!(pool.by_sender.is_empty());
        assert!(pool.index.is_empty());
    }
}
