//! Pending-transaction pool.

use crate::error::ChainError;
use crate::tx::{Transaction, TxId};
use std::collections::HashSet;

/// A FIFO mempool with duplicate suppression.
///
/// Ordering is arrival order, which combined with per-sender sequential
/// nonces gives deterministic execution order within each block.
#[derive(Debug, Default)]
pub struct Mempool {
    queue: Vec<Transaction>,
    ids: HashSet<TxId>,
}

impl Mempool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a transaction.
    ///
    /// # Errors
    ///
    /// [`ChainError::DuplicateTransaction`] if the id is already pending.
    pub fn add(&mut self, tx: Transaction) -> Result<TxId, ChainError> {
        let id = tx.id();
        if !self.ids.insert(id) {
            return Err(ChainError::DuplicateTransaction);
        }
        self.queue.push(tx);
        Ok(id)
    }

    /// Takes up to `n` transactions in arrival order.
    pub fn take(&mut self, n: usize) -> Vec<Transaction> {
        let n = n.min(self.queue.len());
        let taken: Vec<Transaction> = self.queue.drain(..n).collect();
        for tx in &taken {
            self.ids.remove(&tx.id());
        }
        taken
    }

    /// Removes any pending transactions whose ids are in `included`
    /// (called after importing a block mined elsewhere).
    pub fn prune<'a>(&mut self, included: impl IntoIterator<Item = &'a TxId>) {
        let included: HashSet<&TxId> = included.into_iter().collect();
        self.queue.retain(|tx| !included.contains(&tx.id()));
        self.ids.retain(|id| !included.contains(id));
    }

    /// Re-queues transactions (e.g. returned by an abandoned fork) at the
    /// front, preserving their relative order; duplicates are dropped.
    pub fn requeue_front(&mut self, txs: Vec<Transaction>) {
        let mut front = Vec::new();
        for tx in txs {
            if self.ids.insert(tx.id()) {
                front.push(tx);
            }
        }
        front.append(&mut self.queue);
        self.queue = front;
    }

    /// Number of pending transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a transaction is pending.
    #[must_use]
    pub fn contains(&self, id: &TxId) -> bool {
        self.ids.contains(id)
    }

    /// Pending transactions from `sender` (used for nonce assignment).
    #[must_use]
    pub fn pending_from(&self, sender: &drams_crypto::schnorr::PublicKey) -> usize {
        self.queue.iter().filter(|tx| tx.sender == *sender).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::schnorr::Keypair;

    fn tx(nonce: u64) -> Transaction {
        let kp = Keypair::from_seed(b"mempool-tests");
        Transaction::new_signed(&kp, nonce, "c", "m", vec![nonce as u8])
    }

    #[test]
    fn fifo_order_preserved() {
        let mut pool = Mempool::new();
        for i in 0..5 {
            pool.add(tx(i)).unwrap();
        }
        let taken = pool.take(3);
        assert_eq!(taken.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(pool.len(), 2);
        assert!(!pool.contains(&taken[0].id()));
    }

    #[test]
    fn duplicates_rejected() {
        let mut pool = Mempool::new();
        pool.add(tx(0)).unwrap();
        assert_eq!(pool.add(tx(0)), Err(ChainError::DuplicateTransaction));
    }

    #[test]
    fn take_more_than_available() {
        let mut pool = Mempool::new();
        pool.add(tx(0)).unwrap();
        assert_eq!(pool.take(10).len(), 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn prune_removes_included() {
        let mut pool = Mempool::new();
        let a = pool.add(tx(0)).unwrap();
        pool.add(tx(1)).unwrap();
        pool.prune([&a]);
        assert_eq!(pool.len(), 1);
        assert!(!pool.contains(&a));
    }

    #[test]
    fn requeue_front_restores_order_without_duplicates() {
        let mut pool = Mempool::new();
        pool.add(tx(2)).unwrap();
        let orphaned = vec![tx(0), tx(1), tx(2)];
        pool.requeue_front(orphaned);
        let taken = pool.take(3);
        assert_eq!(taken.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn pending_from_counts_sender() {
        let mut pool = Mempool::new();
        pool.add(tx(0)).unwrap();
        pool.add(tx(1)).unwrap();
        let kp = Keypair::from_seed(b"mempool-tests");
        assert_eq!(pool.pending_from(&kp.public()), 2);
        let other = Keypair::from_seed(b"someone-else");
        assert_eq!(pool.pending_from(&other.public()), 0);
    }
}
