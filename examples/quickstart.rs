//! Quickstart: run a monitored cloud federation end to end.
//!
//! Builds a two-cloud federation with the default clinical policy, pushes
//! 100 access requests through PEPs and the PDP while DRAMS probes,
//! Logging Interfaces, the monitor contract and the Analyser watch, and
//! prints what the monitoring pipeline measured.
//!
//! Run with: `cargo run --example quickstart`

use drams::core::adversary::NoAdversary;
use drams::core::monitor::{run_monitor, MonitorConfig};

fn main() {
    let config = MonitorConfig {
        total_requests: 100,
        request_rate_per_sec: 50.0,
        ..MonitorConfig::default()
    };

    println!("DRAMS quickstart — honest federation, full monitoring\n");
    println!(
        "federation: {} tenants, policy `{}`",
        config.federation.tenant_count(),
        config.policy.id
    );

    let (mut report, truth) = run_monitor(&config, &mut NoAdversary);

    println!("\n--- access control plane ---");
    println!("requests issued     : {}", report.requests_issued);
    println!("requests completed  : {}", report.requests_completed);
    println!(
        "granted / refused   : {} / {}",
        report.granted, report.refused
    );
    println!(
        "end-to-end latency  : mean {:.2} ms, p95 {:.2} ms",
        report.e2e_latency.mean() / 1_000.0,
        report.e2e_latency.percentile(95.0) as f64 / 1_000.0
    );

    println!("\n--- monitoring plane ---");
    println!("log entries committed : {}", report.entries_logged);
    println!("blocks mined          : {}", report.blocks_mined);
    println!("transactions          : {}", report.txs_committed);
    println!("groups completed      : {}", report.groups_completed);
    println!(
        "observation→commit    : mean {:.2} ms, p95 {:.2} ms",
        report.log_commit_latency.mean() / 1_000.0,
        report.log_commit_latency.percentile(95.0) as f64 / 1_000.0
    );

    println!("\n--- verdict ---");
    println!("attacks injected      : {}", truth.total_attacks());
    println!("alerts raised         : {}", report.alerts.len());
    assert!(report.alerts.is_empty(), "honest run must stay silent");
    println!("OK: an honest federation raises no alerts.");
}
