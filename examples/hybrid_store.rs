//! The hybrid database + blockchain log store of paper §III (ref [9]).
//!
//! Appends 1000 log entries into the anchored store with different anchor
//! periods, showing the trade-off the paper describes: larger periods mean
//! fewer (cheaper) on-chain transactions but a longer tamper-exposure
//! window. Then demonstrates tamper detection: entries forged after
//! anchoring fail their audit; entries forged inside the window do not —
//! that *is* the window.
//!
//! Run with: `cargo run --example hybrid_store`

use drams::chain::chain::ChainConfig;
use drams::chain::node::Node;
use drams::store::{AnchorContract, AnchoredStore, AuditOutcome};
use drams_crypto::schnorr::Keypair;

fn fresh_node() -> Node {
    let mut node = Node::new(ChainConfig {
        initial_difficulty_bits: 0,
        retarget_interval: 0,
        ..ChainConfig::default()
    });
    node.register_contract(Box::new(AnchorContract));
    node
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Hybrid DB+blockchain store: anchor-period trade-off\n");
    println!(
        "{:>8} {:>12} {:>16} {:>18}",
        "period", "anchors", "chain txs", "max window (entries)"
    );

    for period in [8usize, 32, 128, 512] {
        let mut node = fresh_node();
        let mut store = AnchoredStore::new(period, Keypair::from_seed(b"hospital-db"));
        let mut max_window = 0;
        for i in 0..1000u64 {
            store.append(format!("log-{i}").into_bytes(), &mut node)?;
            max_window = max_window.max(store.log().unsealed_len());
        }
        node.mine_block(1_000)?;
        println!(
            "{:>8} {:>12} {:>16} {:>18}",
            period,
            store.anchors_submitted(),
            store.anchors_submitted(), // one tx per anchor
            max_window
        );
    }

    println!("\nTamper detection (period = 32):");
    let mut node = fresh_node();
    let mut store = AnchoredStore::new(32, Keypair::from_seed(b"hospital-db"));
    for i in 0..100u64 {
        store.append(format!("log-{i}").into_bytes(), &mut node)?;
    }
    node.mine_block(1_000)?;

    // Forge an anchored entry: caught.
    store
        .log_mut()
        .tamper(10, b"the doctor was never here".to_vec());
    let outcome = store.audit(10, &node);
    println!("  entry 10 (anchored, forged)   : {outcome:?}");
    assert_eq!(outcome, AuditOutcome::TamperDetected);

    // Untouched anchored entry: verified.
    let outcome = store.audit(11, &node);
    println!("  entry 11 (anchored, intact)   : {outcome:?}");
    assert_eq!(outcome, AuditOutcome::Verified);

    // Tail entry: still inside the exposure window.
    let outcome = store.audit(99, &node);
    println!("  entry 99 (tail, not anchored) : {outcome:?}");
    assert_eq!(outcome, AuditOutcome::InExposureWindow);

    println!("\nThe exposure window is exactly the unanchored tail — the");
    println!("latency/integrity trade-off of paper §III, made measurable.");
    Ok(())
}
