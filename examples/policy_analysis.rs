//! Formal policy analysis: the offline half of the DRAMS Analyser.
//!
//! Parses a healthcare data-sharing policy from the FACPL-like text
//! syntax, then runs the ref-[8] analyses: completeness (with a concrete
//! counterexample request), permit/deny conflict detection, dead-rule
//! detection, and change-impact between two policy versions.
//!
//! Run with: `cargo run --example policy_analysis`

use drams::analysis::{change_impact, completeness, conflicts, dead_rules, Completeness};
use drams::policy::parser::parse_policy_set;
use drams::policy::policy::PolicyChild;

const POLICY_V1: &str = r#"
policyset federation { deny-overrides
  target: equal(resource.type, "record")
  policy clinical { permit-overrides
    rule doctors-read (permit) {
      target: equal(subject.role, "doctor")
      condition: equal(action.id, "read")
    }
    rule nurses-daytime (permit) {
      target: equal(subject.role, "nurse")
      condition: and(equal(action.id, "read"), less(environment.hour, 20))
    }
    rule block-night-writes (deny) {
      target: equal(action.id, "write")
      condition: greater-eq(environment.hour, 22)
    }
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v1 = parse_policy_set(POLICY_V1)?;
    println!("parsed policy `{}` ({} rules)\n", v1.id, v1.rule_count());

    // 1. Completeness: does every request get a definitive answer?
    match completeness(&v1)? {
        Completeness::Complete => println!("completeness : complete"),
        Completeness::Incomplete { witness } => {
            println!("completeness : INCOMPLETE — counterexample request:");
            for (id, bag) in witness.iter() {
                println!("               {id} = {}", bag[0]);
            }
            // replay the counterexample on the concrete engine
            let (decision, _) = v1.evaluate(&witness);
            println!("               concrete decision: {decision}");
        }
    }

    // 2. Conflicts: where do permit and deny rules overlap?
    if let PolicyChild::Policy(clinical) = &v1.children[0] {
        let found = conflicts(clinical)?;
        println!("\nconflicts    : {}", found.len());
        for c in &found {
            println!("               `{}` vs `{}`", c.permit_rule, c.deny_rule);
        }

        // 3. Dead rules.
        let dead = dead_rules(clinical)?;
        println!("dead rules   : {dead:?}");
    }

    // 4. Change impact: v2 restricts doctors to daytime too.
    let v2_src = POLICY_V1.replace(
        "condition: equal(action.id, \"read\")",
        "condition: and(equal(action.id, \"read\"), less(environment.hour, 20))",
    );
    let v2 = parse_policy_set(&v2_src)?;
    let impact = change_impact(&v1, &v2)?;
    println!("\nchange impact v1 → v2 (doctors now restricted to daytime):");
    println!(
        "  newly permitted : {}",
        impact
            .now_permitted
            .as_ref()
            .map_or("none".to_string(), |w| format!("{w:?}"))
    );
    match &impact.lost_permit {
        Some(w) => {
            println!("  lost permit     : yes — example:");
            for (id, bag) in w.iter() {
                println!("                    {id} = {}", bag[0]);
            }
        }
        None => println!("  lost permit     : none"),
    }
    assert!(!impact.is_neutral(), "the narrowing must be visible");
    Ok(())
}
