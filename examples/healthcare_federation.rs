//! A healthcare cloud federation under attack — the paper's motivating
//! scenario, end to end.
//!
//! Three hospitals federate their clouds to share patient records (the
//! SUNFISH use case behind FaaS). A federation-wide policy governs access;
//! DRAMS monitors it. Mid-run, the response channel between the PDP and
//! one hospital's PEP is compromised and starts flipping decisions — the
//! monitor contract's digest comparison catches every flip.
//!
//! Run with: `cargo run --example healthcare_federation`

use drams::attack::{score, ScriptedAdversary, ThreatKind};
use drams::core::monitor::{run_monitor, MonitorConfig};
use drams::policy::parser::parse_policy_set;
use drams_faas::des::{MILLIS, SECONDS};
use drams_faas::model::FederationSpec;

const HOSPITAL_POLICY: &str = r#"
policyset hospitals { deny-unless-permit
  policy record-access { permit-overrides
    rule doctors (permit) {
      target: equal(subject.role, "doctor")
    }
    rule nurses-read (permit) {
      target: equal(subject.role, "nurse")
      condition: and(equal(action.id, "read"), less(environment.hour, 20))
    }
    rule researchers-anonymised (permit) {
      target: equal(subject.role, "researcher")
      condition: and(equal(action.id, "read"), equal(resource.type, "report"))
    }
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy = parse_policy_set(HOSPITAL_POLICY)?;
    let config = MonitorConfig {
        federation: FederationSpec::symmetric(3, 1, 3), // 3 hospitals
        policy,
        total_requests: 300,
        request_rate_per_sec: 100.0,
        block_interval: 250 * MILLIS,
        group_timeout: 2 * SECONDS,
        seed: 2017,
        ..MonitorConfig::default()
    };

    println!("Healthcare federation: 3 hospitals, shared record policy");
    println!("Attack: response channel flips decisions with p = 0.1\n");

    let mut adversary = ScriptedAdversary::new(ThreatKind::TamperResponse, 0.1, 44);
    let (mut report, truth) = run_monitor(&config, &mut adversary);

    println!("requests completed : {}", report.requests_completed);
    println!(
        "granted / refused  : {} / {}",
        report.granted, report.refused
    );
    println!("responses tampered : {}", truth.tampered_responses.len());

    let s = score(ThreatKind::TamperResponse, &report, &truth);
    println!("\ndetection rate     : {:.1}%", s.rate() * 100.0);
    println!("false positives    : {}", s.false_positives);
    println!(
        "detection latency  : mean {:.1} ms (issue → alert on-chain)",
        s.mean_detection_latency_us / 1_000.0
    );
    println!(
        "monitoring latency : log commit mean {:.1} ms",
        report.log_commit_latency.mean() / 1_000.0
    );
    println!(
        "e2e request latency: mean {:.2} ms (p99 {:.2} ms)",
        report.e2e_latency.mean() / 1_000.0,
        report.e2e_latency.percentile(99.0) as f64 / 1_000.0
    );

    assert_eq!(
        s.detected, s.attacks,
        "every flipped decision must be caught"
    );
    println!(
        "\nAll {} tampered responses were detected on-chain.",
        s.attacks
    );
    Ok(())
}
