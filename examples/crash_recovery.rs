//! Crash-recovery demo: the durable storage engine under the monitor.
//!
//! Part 1 drives the log engine directly — a chain node journaling into
//! a write-ahead log on real files, killed and rebuilt by replay.
//! Part 2 runs a full monitored federation twice: once uninterrupted,
//! once with every monitoring-plane service crash-restarted mid-run —
//! and shows the two runs are byte-identical.
//!
//! Run with: `cargo run --example crash_recovery`

use drams::chain::chain::ChainConfig;
use drams::chain::contract::KvStoreContract;
use drams::chain::node::Node;
use drams::core::adversary::NoAdversary;
use drams::core::monitor::MonitorConfig;
use drams::core::scenario::{run_scenario, CrashTarget, ScenarioSpec, ScriptedAction};
use drams::crypto::codec::Encode;
use drams::crypto::schnorr::Keypair;
use drams::store::persist::{recover_node, WalJournal};
use drams::store::{Durability, FsBackend, Wal, WalConfig};
use drams_faas::des::MILLIS;
use drams_faas::model::TenantId;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    println!("== part 1: a journaled chain node on real files ==\n");
    let dir = std::env::temp_dir().join(format!("drams-crash-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ChainConfig {
        initial_difficulty_bits: 0,
        retarget_interval: 0,
        ..ChainConfig::default()
    };
    let wal = Rc::new(RefCell::new(
        Wal::open(
            Box::new(FsBackend::open(&dir).expect("temp dir")),
            WalConfig {
                segment_records: 64,
                durability: Durability::Flushed,
            },
        )
        .expect("wal"),
    ));
    let mut node = Node::new(config.clone());
    node.register_contract(Box::new(KvStoreContract));
    node.set_journal(Box::new(WalJournal::new(wal.clone())));
    let li = Keypair::from_seed(b"demo-li");
    for i in 0..10 {
        node.submit_call(&li, "kvstore", "put", format!("log entry {i}").into_bytes())
            .expect("submit");
        if i % 4 == 3 {
            node.mine_block(1_000 + i).expect("mine");
        }
    }
    let tip = node.chain().tip_hash();
    let pending = node.mempool_len();
    println!(
        "before the crash: height {}, {} txs still in the mempool",
        2, pending
    );
    drop(node); // power cut

    let recovered =
        recover_node(&wal.borrow(), config, vec![Box::new(KvStoreContract)]).expect("recovery");
    println!(
        "after replay:     height {}, {} txs back in the mempool, tip matches: {}",
        recovered.chain().tip_header().height,
        recovered.mempool_len(),
        recovered.chain().tip_hash() == tip
    );
    assert_eq!(recovered.chain().tip_hash(), tip);
    assert_eq!(recovered.mempool_len(), pending);
    let _ = std::fs::remove_dir_all(&dir);

    println!("\n== part 2: crash-restarting the monitoring plane mid-run ==\n");
    let config = MonitorConfig {
        total_requests: 80,
        request_rate_per_sec: 200.0,
        ..MonitorConfig::default()
    };
    let crashed_spec = ScenarioSpec {
        name: "demo_crashes".to_string(),
        script: vec![
            ScriptedAction::CrashRestart {
                at: 150 * MILLIS,
                target: CrashTarget::ChainNode,
            },
            ScriptedAction::CrashRestart {
                at: 250 * MILLIS,
                target: CrashTarget::Li(TenantId(1)),
            },
            ScriptedAction::CrashRestart {
                at: 350 * MILLIS,
                target: CrashTarget::Analyser,
            },
        ],
        ..ScenarioSpec::canonical(&config)
    };
    let (clean, clean_truth) = run_scenario(&ScenarioSpec::canonical(&config), &mut NoAdversary);
    let (crashed, crashed_truth) = run_scenario(&crashed_spec, &mut NoAdversary);
    println!(
        "uninterrupted: {} completed, {} groups, {} alerts",
        clean.requests_completed,
        clean.groups_completed,
        clean.alerts.len()
    );
    println!(
        "3 crashes:     {} completed, {} groups, {} alerts, {} restarts",
        crashed.requests_completed,
        crashed.groups_completed,
        crashed.alerts.len(),
        crashed.crash_restarts
    );
    let a: Vec<Vec<u8>> = clean
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    let b: Vec<Vec<u8>> = crashed
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    assert_eq!(clean_truth, crashed_truth);
    assert_eq!(a, b);
    assert_eq!(clean.groups_completed, crashed.groups_completed);
    assert_eq!(clean.finished_at, crashed.finished_at);
    println!("\nOK: recovery lost nothing and repeated nothing (byte-identical run).");
}
