//! Attack detection: inject every threat from the paper's threat model
//! and watch DRAMS catch it.
//!
//! For each of the nine threats (tampered requests/responses, corrupted
//! decisions, flipped enforcement, dropped logs, compromised LI, swapped
//! policy, colluding PDP+LI, cross-tenant log replay) this example runs
//! the full monitored federation with a scripted adversary and prints
//! the detection scoreboard.
//!
//! Run with: `cargo run --example attack_detection`

use drams::attack::{score, ScriptedAdversary, ThreatKind};
use drams::core::monitor::{run_monitor, MonitorConfig};
use drams_faas::des::SECONDS;

fn main() {
    println!("DRAMS attack-detection matrix (paper §I threat model)\n");
    println!(
        "{:<18} {:>8} {:>9} {:>7} {:>5} {:>14}",
        "threat", "attacks", "detected", "rate", "fp", "mean latency"
    );
    println!("{}", "-".repeat(66));

    for threat in ThreatKind::ALL {
        let config = MonitorConfig {
            total_requests: 150,
            request_rate_per_sec: 80.0,
            group_timeout: 2 * SECONDS,
            seed: 11,
            ..MonitorConfig::default()
        };
        let mut adversary = ScriptedAdversary::new(threat, 0.15, 99);
        let (report, truth) = run_monitor(&config, &mut adversary);
        let s = score(threat, &report, &truth);
        println!(
            "{:<18} {:>8} {:>9} {:>6.1}% {:>5} {:>11.1} ms",
            threat.to_string(),
            s.attacks,
            s.detected,
            s.rate() * 100.0,
            s.false_positives,
            s.mean_detection_latency_us / 1_000.0
        );
        assert!(
            s.attacks == 0 || s.rate() > 0.99,
            "{threat}: detection rate {:.2} below 100%",
            s.rate()
        );
    }

    println!("\nAll injected attacks were detected.");
}
