//! The §III "System Integrity" mitigation: a Trusted Platform Module
//! guarding the federation key and attesting off-chain components.
//!
//! The paper notes that the LI and other off-chain components cannot be
//! integrity-protected by the blockchain itself, and proposes a TPM to
//! (a) store the symmetric keys and (b) attest component integrity. This
//! example walks both: the federation key is sealed to the platform's
//! measured state — boot a different (compromised) software stack and the
//! key is unobtainable; and a remote verifier checks attestation quotes
//! before trusting a tenant's Logging Interface.
//!
//! Run with: `cargo run --example tpm_attestation`

use drams::core::tpm::{Tpm, TpmError};

fn main() {
    // --- provisioning: measure the good software stack -------------------
    let mut tpm = Tpm::with_seed(b"tenant-2-platform");
    tpm.extend_pcr(0, b"bootloader-v1.4").unwrap();
    tpm.extend_pcr(1, b"li-binary-sha256=deadbeef").unwrap();
    println!("provisioned TPM; PCR0 = {}", tpm.pcr(0).unwrap());

    // Seal the federation key K to this exact state.
    let federation_key = [0x42u8; 32];
    tpm.seal_key("federation-key-K", &federation_key);
    println!("sealed federation key to current PCR state");

    // --- honest boot: key is released ------------------------------------
    let unsealed = tpm.unseal_key("federation-key-K").unwrap();
    assert_eq!(unsealed, federation_key);
    println!("honest boot: key unsealed OK");

    // --- remote attestation ----------------------------------------------
    let verifier_nonce = [7u8; 16];
    let quote = tpm.quote(verifier_nonce);
    assert!(quote.verify(&tpm.attestation_key()));
    println!("verifier accepted the quote (nonce fresh, signature valid)");

    // A forged quote claiming clean PCRs does not verify.
    let mut forged = quote.clone();
    forged.pcrs[1] = drams_crypto::sha256::Digest::ZERO;
    assert!(!forged.verify(&tpm.attestation_key()));
    println!("forged quote (laundered PCR1) rejected");

    // --- compromised boot: malicious LI is measured in --------------------
    tpm.extend_pcr(1, b"li-binary-sha256=malicious").unwrap();
    match tpm.unseal_key("federation-key-K") {
        Err(TpmError::UnsealDenied) => {
            println!("compromised boot: unseal DENIED — the malicious LI never sees K");
        }
        other => panic!("expected denial, got {other:?}"),
    }
    // And its quote now carries the malicious measurement for all to see.
    let tainted = tpm.quote([8u8; 16]);
    assert!(tainted.verify(&tpm.attestation_key()));
    assert_ne!(tainted.pcrs[1], quote.pcrs[1]);
    println!("tainted quote still verifies — but exposes the changed PCR1");
    println!("\nThe §III mitigation holds: key release and component trust are");
    println!("both gated on measured platform state.");
}
