//! # DRAMS — Decentralised Runtime Access Monitoring System
//!
//! Facade crate for the reproduction of *"Decentralised Runtime Monitoring
//! for Access Control Systems in Cloud Federations"* (Ferdous, Margheri,
//! Paci, Yang, Sassone — ICDCS 2017).
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`crypto`] — hashes, symmetric encryption, Merkle trees, signatures.
//! * [`policy`] — the XACML/FACPL-style access-control engine (PDP).
//! * [`analysis`] — the formally-grounded policy analyser.
//! * [`chain`] — the private smart-contract proof-of-work blockchain.
//! * [`faas`] — the FaaS cloud-federation substrate and discrete-event
//!   simulator (PEPs, PRP, tenants, workloads).
//! * [`core`] — DRAMS itself: probes, Logging Interface, monitor contract,
//!   Analyser service, alerts, TPM simulation.
//! * [`store`] — the hybrid database+blockchain log store of ref \[9\].
//! * [`attack`] — the attack-injection framework used in the evaluation.
//! * [`net`] — the real transport: CRC-framed Figure-1 services over
//!   TCP (`drams-node`), with the DES as conformance oracle.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the experiment catalogue.
//!
//! # Example: a full monitored federation run
//!
//! The whole of Figure 1 — PEPs, PDP, probes, Logging Interfaces, the
//! monitor contract mining blocks, and the Analyser re-evaluating every
//! logged decision — in one call:
//!
//! ```
//! use drams::core::adversary::NoAdversary;
//! use drams::core::monitor::{run_monitor, MonitorConfig};
//!
//! let config = MonitorConfig {
//!     total_requests: 10,
//!     ..MonitorConfig::default()
//! };
//! let (report, truth) = run_monitor(&config, &mut NoAdversary);
//! assert_eq!(report.requests_completed, 10);
//! assert_eq!(truth.total_attacks(), 0);
//! assert!(report.alerts.is_empty(), "an honest run raises no alerts");
//! ```

pub use drams_analysis as analysis;
pub use drams_attack as attack;
pub use drams_chain as chain;
pub use drams_core as core;
pub use drams_crypto as crypto;
pub use drams_faas as faas;
pub use drams_net as net;
pub use drams_policy as policy;
pub use drams_store as store;
