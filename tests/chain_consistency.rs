//! Cross-crate chain integrity: monitoring evidence survives (and is
//! reproduced identically by) reorgs, multi-node convergence and
//! re-execution.

use drams::chain::block::Block;
use drams::chain::chain::{ChainConfig, ImportOutcome};
use drams::chain::contract::TxStatus;
use drams::chain::node::Node;
use drams::core::contract::{MonitorContract, MONITOR_CONTRACT};
use drams::core::logent::{LogEntry, ObservationPoint, ProbeId};
use drams_crypto::aead::{seal, SymmetricKey};
use drams_crypto::codec::{Decode, Encode};
use drams_crypto::schnorr::Keypair;
use drams_crypto::sha256::Digest;
use drams_faas::msg::CorrelationId;
use proptest::prelude::*;

fn monitor_node() -> (Node, Keypair) {
    let mut node = Node::new(ChainConfig {
        initial_difficulty_bits: 0,
        retarget_interval: 0,
        ..ChainConfig::default()
    });
    node.register_contract(Box::new(MonitorContract));
    let li = Keypair::from_seed(b"chain-consistency-li");
    node.submit_call(
        &li,
        MONITOR_CONTRACT,
        "init",
        MonitorContract::init_payload(10_000, Keypair::from_seed(b"an").public().fingerprint()),
    )
    .unwrap();
    node.mine_block(0).unwrap();
    (node, li)
}

fn entry(corr: u64, point: ObservationPoint, digest: &[u8]) -> LogEntry {
    let key = SymmetricKey::from_bytes([1; 32]);
    let mut e = LogEntry {
        correlation: CorrelationId(corr),
        point,
        probe: ProbeId(1),
        digest: Digest::of(digest),
        policy_version: None,
        observed_at: 100,
        sealed_payload: seal(&key, [0; 12], b"", b"payload"),
        probe_mac: Digest::ZERO,
    };
    e.probe_mac = e.compute_mac(&[7; 32]);
    e
}

#[test]
fn follower_reproduces_identical_contract_state() {
    let (mut miner, li) = monitor_node();
    let (mut follower, _) = monitor_node();
    // Bring the follower to the miner's chain.
    for point in ObservationPoint::ALL {
        let e = entry(1, point, b"same");
        miner
            .submit_call(&li, MONITOR_CONTRACT, "store_log", e.to_canonical_bytes())
            .unwrap();
    }
    let b1 = miner.mine_block(1_000).unwrap();
    // follower has its own height-1 block (the init block) identical by
    // construction, so import proceeds from the shared prefix.
    follower.receive_block(b1).unwrap();
    assert_eq!(miner.chain().tip_hash(), follower.chain().tip_hash());
    assert_eq!(miner.events().len(), follower.events().len());
    let ms = miner.host().storage_of(MONITOR_CONTRACT).unwrap();
    let fs = follower.host().storage_of(MONITOR_CONTRACT).unwrap();
    assert_eq!(ms.len(), fs.len());
}

#[test]
fn reorg_replays_monitoring_evidence_deterministically() {
    let (mut node, li) = monitor_node();
    let fork_base = node.chain().tip_hash();
    let base_height = node.chain().tip_header().height;

    // Main branch: one block with a log entry.
    let e = entry(7, ObservationPoint::PepRequest, b"x");
    node.submit_call(&li, MONITOR_CONTRACT, "store_log", e.to_canonical_bytes())
        .unwrap();
    node.mine_block(1_000).unwrap();
    let events_before = node.events().len();
    assert_eq!(events_before, 0); // single observation: no completion event

    // Competing branch: two empty blocks from the fork base → heavier.
    let c1 = Block::mine(fork_base, base_height + 1, vec![], 1_500, 0);
    let outcome = node.receive_block(c1.clone()).unwrap();
    assert_eq!(outcome, ImportOutcome::SideChain);
    let c2 = Block::mine(c1.hash(), base_height + 2, vec![], 2_000, 0);
    match node.receive_block(c2).unwrap() {
        ImportOutcome::Reorg { depth } => assert_eq!(depth, 1),
        other => panic!("expected reorg, got {other:?}"),
    }
    // The log entry fell off the main chain; contract state was rebuilt
    // without it.
    let storage = node.host().storage_of(MONITOR_CONTRACT).unwrap();
    assert_eq!(storage.scan_prefix(b"ent/").count(), 0);
    // …but the config survived (init tx is on the common prefix).
    assert!(storage.get(b"cfg/timeout").is_some());
}

#[test]
fn receipts_track_all_submissions() {
    let (mut node, li) = monitor_node();
    let mut ids = Vec::new();
    for i in 0..20u64 {
        let e = entry(i, ObservationPoint::PepRequest, b"d");
        let id = node
            .submit_call(&li, MONITOR_CONTRACT, "store_log", e.to_canonical_bytes())
            .unwrap();
        ids.push(id);
    }
    node.mine_block(1_000).unwrap();
    for id in &ids {
        assert_eq!(node.receipt(id).unwrap().1, TxStatus::Ok);
        assert!(node.chain().confirmations(id).is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-bit corruption of a committed block can never silently
    /// replace the original: either the import is rejected outright, or
    /// (for free header fields like the nonce at difficulty 0 — exactly
    /// the paper's "lightweight PoW gives weak integrity" caveat) the
    /// result is a *different* block under a different hash, leaving the
    /// original content addressable and intact.
    #[test]
    fn corrupted_blocks_never_silently_replace(flip_byte in 0usize..200, flip_bit in 0usize..8) {
        let (mut node, li) = monitor_node();
        let e = entry(1, ObservationPoint::PepRequest, b"x");
        node.submit_call(&li, MONITOR_CONTRACT, "store_log", e.to_canonical_bytes()).unwrap();
        let block = node.mine_block(1_000).unwrap();

        let mut bytes = block.to_canonical_bytes();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;

        let (mut fresh, li2) = monitor_node();
        // Rebuild the fresh node to the same pre-block state.
        let _ = li2;
        match drams::chain::block::Block::from_canonical_bytes(&bytes) {
            Err(_) => {} // corruption broke the encoding: rejected at decode
            Ok(corrupted) => {
                if corrupted == block {
                    // flipped a bit that decodes identically? impossible for
                    // canonical codec, but guard anyway
                    return Ok(());
                }
                let corrupted_hash = corrupted.hash();
                let result = fresh.receive_block(corrupted);
                if result.is_ok() {
                    prop_assert_ne!(
                        corrupted_hash,
                        block.hash(),
                        "an imported corruption must be a different block"
                    );
                }
            }
        }
    }
}
