//! Smoke test: `examples/quickstart.rs` must run to completion.
//!
//! The quickstart is the first thing README.md tells a newcomer to run,
//! so it gets the same CI guarantee as the library: this test drives it
//! through `cargo run --example quickstart` (the exact command the
//! README gives) and checks both the exit status and the final OK line.

use std::process::Command;

#[test]
fn quickstart_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--example", "quickstart"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo");

    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code()
    );
    assert!(
        stdout.contains("OK: an honest federation raises no alerts."),
        "quickstart did not reach its final OK line\nstdout:\n{stdout}"
    );
}
