//! Decode-fuzzing across every wire type in the workspace: arbitrary
//! bytes must never panic a decoder — they either parse or return a
//! malformed-encoding error. Every type that crosses a trust boundary
//! (network, chain, contract storage) is covered, plus round-trip
//! stability for valid encodings.

use drams::chain::block::{Block, BlockHeader};
use drams::chain::tx::Transaction;
use drams::core::alert::Alert;
use drams::core::logent::LogEntry;
use drams::policy::attr::{AttributeValue, Request};
use drams::policy::decision::Response;
use drams::policy::expr::Expr;
use drams::policy::policy::PolicySet;
use drams::policy::rule::Rule;
use drams::policy::target::Target;
use drams_crypto::codec::Decode;
use drams_crypto::schnorr::{PublicKey, Signature};
use drams_crypto::sha256::Digest;
use drams_faas::msg::{RequestEnvelope, ResponseEnvelope};
use proptest::prelude::*;

macro_rules! fuzz_decoder {
    ($name:ident, $ty:ty) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]
            #[test]
            fn $name(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                // Must not panic; errors are fine.
                let _ = <$ty>::from_canonical_bytes(&bytes);
            }
        }
    };
}

fuzz_decoder!(digest_decode_never_panics, Digest);
fuzz_decoder!(public_key_decode_never_panics, PublicKey);
fuzz_decoder!(signature_decode_never_panics, Signature);
fuzz_decoder!(attribute_value_decode_never_panics, AttributeValue);
fuzz_decoder!(request_decode_never_panics, Request);
fuzz_decoder!(expr_decode_never_panics, Expr);
fuzz_decoder!(target_decode_never_panics, Target);
fuzz_decoder!(rule_decode_never_panics, Rule);
fuzz_decoder!(policy_set_decode_never_panics, PolicySet);
fuzz_decoder!(response_decode_never_panics, Response);
fuzz_decoder!(tx_decode_never_panics, Transaction);
fuzz_decoder!(block_header_decode_never_panics, BlockHeader);
fuzz_decoder!(block_decode_never_panics, Block);
fuzz_decoder!(log_entry_decode_never_panics, LogEntry);
fuzz_decoder!(alert_decode_never_panics, Alert);
fuzz_decoder!(request_envelope_decode_never_panics, RequestEnvelope);
fuzz_decoder!(response_envelope_decode_never_panics, ResponseEnvelope);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid encodings survive arbitrary single-byte corruption without
    /// panicking, and a corrupted encoding that still decodes never
    /// round-trips to the original digest silently.
    #[test]
    fn corrupted_log_entries_never_panic(flip in 0usize..400, bit in 0usize..8) {
        use drams_crypto::aead::{seal, SymmetricKey};
        use drams_crypto::codec::Encode;
        use drams::core::logent::{ObservationPoint, ProbeId};
        use drams_faas::msg::CorrelationId;

        let key = SymmetricKey::from_bytes([1; 32]);
        let mut entry = LogEntry {
            correlation: CorrelationId(1),
            point: ObservationPoint::PdpResponse,
            probe: ProbeId(1),
            digest: Digest::of(b"x"),
            policy_version: Some(Digest::of(b"v")),
            observed_at: 9,
            sealed_payload: seal(&key, [0; 12], b"", b"payload-bytes"),
            probe_mac: Digest::ZERO,
        };
        entry.probe_mac = entry.compute_mac(&[2; 32]);
        let mut bytes = entry.to_canonical_bytes();
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        match LogEntry::from_canonical_bytes(&bytes) {
            Err(_) => {}
            Ok(decoded) => {
                // If it decodes, the corruption must be visible: either
                // the struct differs, or (same struct ⇒ the flip must have
                // been undone, impossible for xor) — assert difference.
                prop_assert_ne!(decoded, entry);
            }
        }
    }
}
