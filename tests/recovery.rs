//! E11 crash-recovery, cross-crate: every monitoring-plane service can
//! die mid-run and restart from its durable store with **byte-identical**
//! results — honest and under attack. This is the acceptance bar of the
//! durable storage engine: recovery loses nothing (no missing groups,
//! no dropped alerts) and repeats nothing (no re-raised alerts).

use drams::attack::{ScriptedAdversary, ThreatKind};
use drams::core::adversary::NoAdversary;
use drams::core::monitor::MonitorConfig;
use drams::core::scenario::{run_scenario, CrashTarget, ScenarioSpec, ScriptedAction};
use drams::crypto::codec::Encode;
use drams_bench::scenarios;
use drams_faas::des::MILLIS;

fn alert_bytes(report: &drams::core::monitor::MonitorReport) -> Vec<Vec<u8>> {
    report
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect()
}

/// The committed recovery matrix: each crashed run must be
/// byte-identical to its uninterrupted twin.
#[test]
fn recovery_matrix_is_byte_identical_to_uninterrupted_runs() {
    for spec in scenarios::recovery_matrix(true) {
        let twin = scenarios::strip_crashes(&spec);
        let (clean, clean_truth) = run_scenario(&twin, &mut NoAdversary);
        let (crashed, crashed_truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(crashed.crash_restarts, 1, "{}", spec.name);
        assert_eq!(clean.crash_restarts, 0, "{}", twin.name);
        assert_eq!(clean_truth, crashed_truth, "{}", spec.name);
        assert_eq!(
            alert_bytes(&clean),
            alert_bytes(&crashed),
            "{}: alerts must match byte-for-byte",
            spec.name
        );
        assert_eq!(
            clean.requests_completed, crashed.requests_completed,
            "{}",
            spec.name
        );
        assert_eq!(
            clean.entries_logged, crashed.entries_logged,
            "{}",
            spec.name
        );
        assert_eq!(
            clean.groups_completed, crashed.groups_completed,
            "{}",
            spec.name
        );
        assert_eq!(clean.txs_committed, crashed.txs_committed, "{}", spec.name);
        assert_eq!(clean.finished_at, crashed.finished_at, "{}", spec.name);
        assert_eq!(
            clean.e2e_latency.mean(),
            crashed.e2e_latency.mean(),
            "{}",
            spec.name
        );
    }
}

/// The sharper half of the bar: crash the Analyser *while an attack is
/// raising alerts*. A recovered Analyser that lost its checkpoint would
/// re-scan the chain and re-raise alerts for groups it already checked;
/// one that lost its authorised-policy history would false-alert. Both
/// would break byte-identity.
#[test]
fn analyser_crash_under_attack_neither_loses_nor_repeats_alerts() {
    let config = MonitorConfig {
        total_requests: 80,
        request_rate_per_sec: 200.0,
        ..MonitorConfig::default()
    };
    let crash = ScenarioSpec {
        name: "attacked_crash_analyser".to_string(),
        script: vec![ScriptedAction::CrashRestart {
            at: 400 * MILLIS,
            target: CrashTarget::Analyser,
        }],
        ..ScenarioSpec::canonical(&config)
    };
    let twin = scenarios::strip_crashes(&crash);
    for threat in [
        ThreatKind::CorruptDecision,
        ThreatKind::TamperResponse,
        ThreatKind::FlipEnforcement,
    ] {
        let mut a = ScriptedAdversary::new(threat, 0.2, 41);
        let mut b = ScriptedAdversary::new(threat, 0.2, 41);
        let (clean, clean_truth) = run_scenario(&twin, &mut a);
        let (crashed, crashed_truth) = run_scenario(&crash, &mut b);
        assert!(
            !clean.alerts.is_empty(),
            "{threat}: the attacked twin must alert for this test to bite"
        );
        assert_eq!(clean_truth, crashed_truth, "{threat}");
        assert_eq!(
            alert_bytes(&clean),
            alert_bytes(&crashed),
            "{threat}: a recovered analyser must neither drop nor repeat alerts"
        );
    }
}

/// Crash the chain node while a drop-log adversary is active: the
/// timeout-based detections depend on epoch bookkeeping inside contract
/// storage, which must survive the restart via journal replay.
#[test]
fn chain_crash_under_attack_preserves_timeout_detections() {
    let config = MonitorConfig {
        total_requests: 80,
        request_rate_per_sec: 200.0,
        ..MonitorConfig::default()
    };
    let crash = ScenarioSpec {
        name: "attacked_crash_chain".to_string(),
        script: vec![ScriptedAction::CrashRestart {
            at: 600 * MILLIS,
            target: CrashTarget::ChainNode,
        }],
        ..ScenarioSpec::canonical(&config)
    };
    let twin = scenarios::strip_crashes(&crash);
    let mut a = ScriptedAdversary::new(ThreatKind::DropLog, 0.15, 23);
    let mut b = ScriptedAdversary::new(ThreatKind::DropLog, 0.15, 23);
    let (clean, clean_truth) = run_scenario(&twin, &mut a);
    let (crashed, crashed_truth) = run_scenario(&crash, &mut b);
    assert!(!clean.alerts.is_empty(), "drop-log must alert");
    assert_eq!(clean_truth, crashed_truth);
    assert_eq!(alert_bytes(&clean), alert_bytes(&crashed));
    assert_eq!(clean.groups_completed, crashed.groups_completed);
}

/// Two crashes of different services in one run still recover cleanly.
#[test]
fn double_crash_in_one_run_recovers() {
    let config = MonitorConfig {
        total_requests: 60,
        request_rate_per_sec: 150.0,
        ..MonitorConfig::default()
    };
    let spec = ScenarioSpec {
        name: "double_crash".to_string(),
        script: vec![
            ScriptedAction::CrashRestart {
                at: 200 * MILLIS,
                target: CrashTarget::ChainNode,
            },
            ScriptedAction::CrashRestart {
                at: 350 * MILLIS,
                target: CrashTarget::Analyser,
            },
        ],
        ..ScenarioSpec::canonical(&config)
    };
    let twin = scenarios::strip_crashes(&spec);
    let (clean, clean_truth) = run_scenario(&twin, &mut NoAdversary);
    let (crashed, crashed_truth) = run_scenario(&spec, &mut NoAdversary);
    assert_eq!(crashed.crash_restarts, 2);
    assert_eq!(clean_truth, crashed_truth);
    assert_eq!(alert_bytes(&clean), alert_bytes(&crashed));
    assert_eq!(clean.groups_completed, crashed.groups_completed);
    assert_eq!(clean.finished_at, crashed.finished_at);
}
