//! The event-driven scenario runtime, cross-crate: the canonical
//! scenario must reproduce the classic `run_monitor` results
//! byte-for-byte, and the E10 named scenarios must behave as their
//! specs claim.

use drams::attack::{score, FaultWindow, ScriptedAdversary, ThreatKind, WindowedAdversary};
use drams::core::adversary::NoAdversary;
use drams::core::alert::AlertKind;
use drams::core::monitor::{run_monitor, MonitorConfig};
use drams::core::scenario::{run_scenario, ScenarioSpec};
use drams::crypto::codec::Encode;
use drams_bench::scenarios;
use drams_faas::des::{MILLIS, SECONDS};

fn base() -> MonitorConfig {
    MonitorConfig {
        total_requests: 60,
        request_rate_per_sec: 120.0,
        ..MonitorConfig::default()
    }
}

/// The refactor's regression bar, part 1: `run_monitor` (the
/// compatibility wrapper) and the default `ScenarioSpec` produce
/// byte-identical alerts, identical ground truth and identical
/// entry/group counts — honest and under attack. (Exact RNG draws
/// deliberately differ from the pre-refactor monolithic loop: the
/// per-component stream split changed every latency sample by design.
/// Equivalence with the *pre-refactor* run is therefore pinned at the
/// invariant level — `golden_default_seed_counts` below plus the
/// unchanged `end_to_end.rs`/`attack_matrix.rs` expectations — while
/// wrapper ≡ canonical spec is pinned byte-for-byte here.)
#[test]
fn golden_canonical_scenario_equals_run_monitor_byte_for_byte() {
    // Honest run.
    let config = base();
    let (wrapper, wrapper_truth) = run_monitor(&config, &mut NoAdversary);
    let (scenario, scenario_truth) =
        run_scenario(&ScenarioSpec::canonical(&config), &mut NoAdversary);
    assert_eq!(wrapper_truth, scenario_truth);
    assert_eq!(wrapper.requests_issued, scenario.requests_issued);
    assert_eq!(wrapper.requests_completed, scenario.requests_completed);
    assert_eq!(wrapper.entries_logged, scenario.entries_logged);
    assert_eq!(wrapper.groups_completed, scenario.groups_completed);
    assert_eq!(wrapper.txs_committed, scenario.txs_committed);
    assert_eq!(wrapper.blocks_mined, scenario.blocks_mined);
    assert_eq!(wrapper.finished_at, scenario.finished_at);
    let wrapper_alerts: Vec<Vec<u8>> = wrapper
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    let scenario_alerts: Vec<Vec<u8>> = scenario
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    assert_eq!(wrapper_alerts, scenario_alerts);

    // Attacked run: two identically seeded adversaries.
    for threat in [
        ThreatKind::TamperRequest,
        ThreatKind::DropLog,
        ThreatKind::SwapPolicy,
    ] {
        let mut a = ScriptedAdversary::new(threat, 0.2, 99);
        let mut b = ScriptedAdversary::new(threat, 0.2, 99);
        let (wr, wt) = run_monitor(&config, &mut a);
        let (sr, st) = run_scenario(&ScenarioSpec::canonical(&config), &mut b);
        assert_eq!(wt, st, "{threat}: ground truth must match byte-for-byte");
        let wa: Vec<Vec<u8>> = wr.alerts.iter().map(Encode::to_canonical_bytes).collect();
        let sa: Vec<Vec<u8>> = sr.alerts.iter().map(Encode::to_canonical_bytes).collect();
        assert_eq!(wa, sa, "{threat}: alerts must match byte-for-byte");
        assert_eq!(wr.entries_logged, sr.entries_logged, "{threat}");
        assert_eq!(wr.groups_completed, sr.groups_completed, "{threat}");
    }
}

/// The refactor's regression bar, part 2 — the pre-refactor pins for
/// the default seed: the canonical scenario keeps reproducing the
/// classic run's invariant counts (these values are the ones the
/// pre-refactor loop produced and its test suite asserted).
#[test]
fn golden_default_seed_counts() {
    let (report, truth) = run_monitor(&base(), &mut NoAdversary);
    assert_eq!(report.requests_issued, 60);
    assert_eq!(report.requests_completed, 60);
    assert_eq!(report.entries_logged, 240);
    assert_eq!(report.groups_completed, 60);
    assert_eq!(report.requests_dropped, 0);
    assert_eq!(report.policy_activations, 1);
    assert!(report.alerts.is_empty());
    assert_eq!(truth.total_attacks(), 0);
}

#[test]
fn e10_matrix_shapes_hold() {
    for spec in scenarios::matrix(true) {
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(
            truth.total_attacks(),
            0,
            "{}: faults are not attacks",
            spec.name
        );
        assert_eq!(
            report.requests_issued, spec.config.total_requests,
            "{}",
            spec.name
        );
        match spec.name.as_str() {
            "degraded_li" => {
                // The stalled LI must surface as missing observations…
                assert!(
                    report
                        .alerts
                        .iter()
                        .any(|a| matches!(a.kind, AlertKind::MissingLog { .. })),
                    "degraded_li raised no MissingLog: {:?}",
                    report.alerts
                );
                assert!(report.groups_completed < report.requests_completed);
            }
            _ => {
                // …and every other scenario runs clean end to end.
                assert!(
                    report.alerts.is_empty(),
                    "{}: unexpected alerts {:?}",
                    spec.name,
                    report.alerts
                );
                assert_eq!(
                    report.groups_completed, report.requests_completed,
                    "{}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn policy_flip_scenario_has_real_churn() {
    let spec = scenarios::by_name("policy_flip", true).expect("named scenario");
    let (report, _) = run_scenario(&spec, &mut NoAdversary);
    assert_eq!(
        report.policy_activations, 3,
        "initial + publish + rollback must all activate"
    );
    assert!(report.alerts.is_empty(), "churn is legitimate");
}

#[test]
fn federated_pdp_scenario_beats_central_on_decision_latency() {
    let federated = scenarios::by_name("federated_pdp", true).expect("named scenario");
    let mut central = federated.clone();
    central.placement = drams::core::scenario::PdpPlacement::Central;
    let (f, _) = run_scenario(&federated, &mut NoAdversary);
    let (c, _) = run_scenario(&central, &mut NoAdversary);
    assert!(
        f.e2e_latency.mean() * 2.0 < c.e2e_latency.mean(),
        "per-cloud PDPs must cut e2e latency: local {} vs central {}",
        f.e2e_latency.mean(),
        c.e2e_latency.mean()
    );
}

/// A scheduled attack campaign inside a burst scenario: the windowed
/// adversary only fires inside its window and is still fully detected.
#[test]
fn windowed_adversary_inside_scenario_is_detected() {
    let mut spec = scenarios::by_name("steady_state", true).expect("named scenario");
    spec.config.group_timeout = 2 * SECONDS;
    let inner = ScriptedAdversary::new(ThreatKind::CorruptDecision, 0.5, 5);
    let mut adversary =
        WindowedAdversary::new(inner, vec![FaultWindow::new(100 * MILLIS, 400 * MILLIS)]);
    let (report, truth) = run_scenario(&spec, &mut adversary);
    let s = score(ThreatKind::CorruptDecision, &report, &truth);
    assert!(s.attacks > 0);
    assert!((s.attacks as u64) < spec.config.total_requests / 2);
    assert_eq!(s.detected, s.attacks);
    assert_eq!(s.false_positives, 0);
}
