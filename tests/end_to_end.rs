//! Cross-crate integration: the full DRAMS pipeline under varied
//! configurations.

use drams::core::adversary::NoAdversary;
use drams::core::monitor::{run_monitor, MonitorConfig};
use drams_faas::des::{MILLIS, SECONDS};
use drams_faas::model::FederationSpec;
use drams_faas::pep::EnforcementBias;

fn base() -> MonitorConfig {
    MonitorConfig {
        total_requests: 60,
        request_rate_per_sec: 120.0,
        ..MonitorConfig::default()
    }
}

#[test]
fn every_request_is_fully_observed_and_committed() {
    let (report, _) = run_monitor(&base(), &mut NoAdversary);
    assert_eq!(report.requests_completed, 60);
    assert_eq!(report.entries_logged, 60 * 4);
    assert_eq!(report.groups_completed, 60);
    assert!(report.alerts.is_empty());
}

#[test]
fn scales_to_larger_federations() {
    for tenants in [1u32, 4, 8] {
        let config = MonitorConfig {
            federation: FederationSpec::symmetric(tenants, 1, 2),
            ..base()
        };
        let (report, _) = run_monitor(&config, &mut NoAdversary);
        assert_eq!(
            report.requests_completed, 60,
            "federation with {tenants} clouds"
        );
        assert_eq!(report.groups_completed, 60);
    }
}

#[test]
fn permit_biased_pep_grants_more() {
    let deny_biased = base();
    let permit_biased = MonitorConfig {
        bias: EnforcementBias::PermitBiased,
        ..base()
    };
    let (d, _) = run_monitor(&deny_biased, &mut NoAdversary);
    let (p, _) = run_monitor(&permit_biased, &mut NoAdversary);
    // With deny-unless-permit root there are no NA/Indeterminate outcomes,
    // so both biases agree here; permit-biased can never grant less.
    assert!(p.granted >= d.granted);
}

#[test]
fn monitoring_overhead_on_critical_path_is_negligible() {
    // The paper's probes sit off the decision path: end-to-end latency
    // with monitoring on must be within noise of monitoring off.
    let with = base();
    let without = MonitorConfig {
        monitoring_enabled: false,
        analyser_enabled: false,
        ..base()
    };
    let (on, _) = run_monitor(&with, &mut NoAdversary);
    let (off, _) = run_monitor(&without, &mut NoAdversary);
    let overhead = on.e2e_latency.mean() / off.e2e_latency.mean();
    assert!(
        (0.9..1.1).contains(&overhead),
        "monitoring must be off the critical path, got overhead factor {overhead}"
    );
}

#[test]
fn faster_blocks_cut_detection_pipeline_latency() {
    let fast = MonitorConfig {
        block_interval: 100 * MILLIS,
        ..base()
    };
    let slow = MonitorConfig {
        block_interval: SECONDS,
        group_timeout: 4 * SECONDS,
        ..base()
    };
    let (f, _) = run_monitor(&fast, &mut NoAdversary);
    let (s, _) = run_monitor(&slow, &mut NoAdversary);
    assert!(f.log_commit_latency.mean() < s.log_commit_latency.mean());
}

#[test]
fn seeds_change_workload_but_not_correctness() {
    for seed in [1u64, 7, 123, 9999] {
        let config = MonitorConfig { seed, ..base() };
        let (report, truth) = run_monitor(&config, &mut NoAdversary);
        assert_eq!(report.requests_completed, 60, "seed {seed}");
        assert_eq!(truth.total_attacks(), 0);
        assert!(report.alerts.is_empty(), "seed {seed}: {:?}", report.alerts);
    }
}
