//! Cross-crate property tests: the symbolic analyser and the concrete
//! policy engine must agree — this is the soundness link that makes the
//! Analyser's verdicts meaningful.

use drams::analysis::{can_deny, can_permit, completeness, equivalent, Completeness, Equivalence};
use drams::policy::decision::Decision;
use drams_faas::workload::{PolicyGenerator, PolicyShape, RequestGenerator, Vocabulary};
use proptest::prelude::*;

fn shapes() -> Vec<PolicyShape> {
    use drams::policy::combining::CombiningAlg;
    let mut shapes = Vec::new();
    for root in [
        CombiningAlg::DenyOverrides,
        CombiningAlg::PermitOverrides,
        CombiningAlg::FirstApplicable,
        CombiningAlg::DenyUnlessPermit,
        CombiningAlg::PermitUnlessDeny,
    ] {
        for policy_alg in [CombiningAlg::PermitOverrides, CombiningAlg::FirstApplicable] {
            shapes.push(PolicyShape {
                policies: 3,
                rules_per_policy: 3,
                root_algorithm: root,
                policy_algorithm: policy_alg,
            });
        }
    }
    shapes
}

#[test]
fn symbolic_witnesses_replay_on_concrete_engine() {
    for (i, shape) in shapes().into_iter().enumerate() {
        for seed in 0..6u64 {
            let mut gen = PolicyGenerator::new(Vocabulary::default(), seed * 31 + i as u64);
            let set = gen.next_policy_set(&shape);
            if let Some(w) = can_permit(&set).expect("analysable") {
                assert_eq!(
                    set.evaluate(&w).0.to_decision(),
                    Decision::Permit,
                    "permit witness, shape {i}, seed {seed}"
                );
            }
            if let Some(w) = can_deny(&set).expect("analysable") {
                assert_eq!(
                    set.evaluate(&w).0.to_decision(),
                    Decision::Deny,
                    "deny witness, shape {i}, seed {seed}"
                );
            }
            if let Completeness::Incomplete { witness } = completeness(&set).expect("analysable") {
                let d = set.evaluate(&witness).0.to_decision();
                assert!(
                    d == Decision::NotApplicable || d == Decision::Indeterminate,
                    "gap witness must fall through, got {d}, shape {i}, seed {seed}"
                );
            }
        }
    }
}

#[test]
fn compiled_engine_matches_interpreter_on_workload_fragment() {
    // The PDP serves the compiled engine; the seeds here cover the exact
    // policy shapes E5 benchmarks, across all root algorithms.
    use drams::policy::compiled::PreparedPolicySet;
    for (i, shape) in shapes().into_iter().enumerate() {
        for seed in 0..4u64 {
            let mut pgen = PolicyGenerator::new(Vocabulary::default(), seed * 131 + i as u64);
            let set = pgen.next_policy_set(&shape);
            let prepared = PreparedPolicySet::compile(&set);
            let mut rgen = RequestGenerator::new(Vocabulary::default(), 1.0, seed ^ 0xbeef);
            for _ in 0..25 {
                let request = rgen.next_request();
                assert_eq!(
                    set.evaluate(&request),
                    prepared.evaluate(&request),
                    "shape {i}, seed {seed}, request {request:?}"
                );
            }
        }
    }
}

#[test]
fn policies_are_equivalent_to_themselves_and_not_to_mutants() {
    let mut gen = PolicyGenerator::new(Vocabulary::default(), 77);
    let set = gen.next_policy_set(&PolicyShape::default());
    assert!(matches!(
        equivalent(&set, &set).unwrap(),
        Equivalence::Equivalent
    ));
}

#[test]
fn deny_unless_permit_roots_are_always_complete() {
    use drams::policy::combining::CombiningAlg;
    for seed in 0..10u64 {
        let mut gen = PolicyGenerator::new(Vocabulary::default(), seed);
        let set = gen.next_policy_set(&PolicyShape {
            root_algorithm: CombiningAlg::DenyUnlessPermit,
            ..PolicyShape::default()
        });
        assert!(
            completeness(&set).expect("analysable").is_complete(),
            "seed {seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized agreement: on arbitrary generated requests, the decision
    /// the concrete engine computes is consistent with the symbolic
    /// permit/deny characterisation (sampled instead of enumerated).
    #[test]
    fn concrete_decisions_fall_inside_symbolic_characterisation(
        policy_seed in 0u64..500,
        request_seed in 0u64..500,
    ) {
        use drams::analysis::constraint::compile_policy_set;
        use drams::analysis::solver::satisfiable;
        use drams::analysis::Formula;

        let mut pgen = PolicyGenerator::new(Vocabulary::default(), policy_seed);
        let set = pgen.next_policy_set(&PolicyShape {
            policies: 2,
            rules_per_policy: 2,
            ..PolicyShape::default()
        });
        let sym = compile_policy_set(&set).expect("analysable");
        let mut rgen = RequestGenerator::new(Vocabulary::default(), 1.0, request_seed);
        let request = rgen.next_request();
        let (ext, _) = set.evaluate(&request);

        // The symbolic permit formula must be satisfiable whenever some
        // concrete request (this one!) reaches Permit — and dually for deny.
        match ext.to_decision() {
            Decision::Permit => prop_assert!(satisfiable(&sym.permit).unwrap()),
            Decision::Deny => prop_assert!(satisfiable(&sym.deny).unwrap()),
            _ => prop_assert!(satisfiable(
                &Formula::and(vec![
                    Formula::not(sym.permit.clone()),
                    Formula::not(sym.deny.clone()),
                ])
            ).unwrap()),
        }
    }
}
