//! The full threat-model matrix (paper §I), run as an integration test:
//! every threat must be detected with zero false positives.

use drams::attack::{score, ScriptedAdversary, ThreatKind};
use drams::core::monitor::{run_monitor, MonitorConfig};
use drams_faas::des::SECONDS;

fn config(seed: u64) -> MonitorConfig {
    MonitorConfig {
        total_requests: 80,
        request_rate_per_sec: 100.0,
        group_timeout: 2 * SECONDS,
        seed,
        ..MonitorConfig::default()
    }
}

fn run_threat(threat: ThreatKind, probability: f64, seed: u64) -> drams::attack::DetectionScore {
    let mut adversary = ScriptedAdversary::new(threat, probability, seed ^ 0xabcd);
    let (report, truth) = run_monitor(&config(seed), &mut adversary);
    score(threat, &report, &truth)
}

#[test]
fn tampered_requests_are_always_detected() {
    let s = run_threat(ThreatKind::TamperRequest, 0.2, 1);
    assert!(s.attacks > 0);
    assert_eq!(s.detected, s.attacks);
    assert_eq!(s.false_positives, 0);
}

#[test]
fn tampered_responses_are_always_detected() {
    let s = run_threat(ThreatKind::TamperResponse, 0.2, 2);
    assert!(s.attacks > 0);
    assert_eq!(s.detected, s.attacks);
    assert_eq!(s.false_positives, 0);
}

#[test]
fn lying_pdp_is_always_detected() {
    let s = run_threat(ThreatKind::CorruptDecision, 0.2, 3);
    assert!(s.attacks > 0);
    assert_eq!(s.detected, s.attacks);
    assert_eq!(s.false_positives, 0);
}

#[test]
fn rogue_pep_enforcement_is_always_detected() {
    let s = run_threat(ThreatKind::FlipEnforcement, 0.2, 4);
    assert!(s.attacks > 0);
    assert_eq!(s.detected, s.attacks);
}

#[test]
fn dropped_logs_are_detected_via_epoch_timeout() {
    let s = run_threat(ThreatKind::DropLog, 0.1, 5);
    assert!(s.attacks > 0);
    assert_eq!(s.detected, s.attacks);
    // timeout-based detection is necessarily slower than digest matching
    assert!(s.mean_detection_latency_us >= 1_000_000.0);
}

#[test]
fn compromised_li_is_detected() {
    let s = run_threat(ThreatKind::TamperLog, 0.1, 6);
    assert!(s.attacks > 0);
    assert_eq!(s.detected, s.attacks);
}

#[test]
fn policy_swap_is_detected() {
    let s = run_threat(ThreatKind::SwapPolicy, 1.0, 7);
    assert_eq!(s.attacks, 1);
    assert_eq!(s.detected, 1);
}

#[test]
fn detection_survives_higher_attack_rates() {
    for p in [0.05, 0.3, 0.6] {
        let s = run_threat(ThreatKind::TamperResponse, p, 8);
        assert_eq!(
            s.detected, s.attacks,
            "rate {p}: {} of {} detected",
            s.detected, s.attacks
        );
    }
}

#[test]
fn honest_runs_have_no_false_positives_across_threat_scoring() {
    let (report, truth) = run_monitor(&config(9), &mut drams::core::adversary::NoAdversary);
    for threat in ThreatKind::ALL {
        let s = score(threat, &report, &truth);
        assert_eq!(s.attacks, 0, "{threat}");
        assert_eq!(s.false_positives, 0, "{threat}");
    }
}
