//! The full threat-model matrix (paper §I), run as an integration test:
//! every threat must be detected with zero false positives.
//!
//! Assertions are made on **alert multisets derived from the ground
//! truth** — the set of correlations carrying a matching alert must
//! equal the set of attacked correlations — never on the order alerts
//! happen to be appended in, so detector scheduling changes cannot make
//! these tests flap.

use drams::attack::{expected_alert_kinds, score, DetectionScore, ScriptedAdversary, ThreatKind};
use drams::core::monitor::{run_monitor, GroundTruth, MonitorConfig, MonitorReport};
use drams_faas::des::SECONDS;
use drams_faas::msg::CorrelationId;
use std::collections::BTreeSet;

fn config(seed: u64) -> MonitorConfig {
    MonitorConfig {
        total_requests: 80,
        request_rate_per_sec: 100.0,
        group_timeout: 2 * SECONDS,
        seed,
        ..MonitorConfig::default()
    }
}

/// The correlations the ground truth says `threat` attacked — the same
/// join the scorer performs, restated here so the test checks the
/// contract rather than trusting the scorer's own bookkeeping.
fn attacked(threat: ThreatKind, truth: &GroundTruth) -> BTreeSet<CorrelationId> {
    match threat {
        ThreatKind::TamperRequest => truth.tampered_requests.iter().copied().collect(),
        ThreatKind::TamperResponse => truth.tampered_responses.iter().copied().collect(),
        ThreatKind::CorruptDecision | ThreatKind::ColludePdpLi => {
            truth.corrupted_decisions.iter().copied().collect()
        }
        ThreatKind::FlipEnforcement => truth.flipped_enforcements.iter().copied().collect(),
        ThreatKind::DropLog => truth.dropped_logs.iter().map(|(c, _)| *c).collect(),
        ThreatKind::TamperLog => truth.tampered_logs.iter().map(|(c, _)| *c).collect(),
        ThreatKind::ReplayLog => truth.replayed_logs.iter().map(|(c, _)| *c).collect(),
        ThreatKind::SwapPolicy => BTreeSet::new(),
    }
}

/// The multiset law every per-transaction threat must satisfy: the set
/// of correlations carrying an alert of the threat's expected kinds is
/// exactly the set of attacked correlations. Order-free, duplicate-free
/// — immune to alert scheduling and batching changes.
fn assert_alert_multiset_matches_truth(
    threat: ThreatKind,
    report: &MonitorReport,
    truth: &GroundTruth,
) {
    if threat == ThreatKind::SwapPolicy && truth.policy_swapped {
        // Policy swap is one global attack, not a per-transaction one:
        // alerts land on whichever requests the wrong policy version
        // served, which the ground truth does not enumerate.
        return;
    }
    let matchers = expected_alert_kinds(threat);
    let alerted: BTreeSet<CorrelationId> = report
        .alerts
        .iter()
        .filter(|a| matchers.iter().any(|m| m(&a.kind)))
        .map(|a| a.correlation)
        .collect();
    let expected = attacked(threat, truth);
    assert_eq!(
        alerted, expected,
        "{threat}: matching-alert correlations must equal attacked correlations"
    );
}

/// Runs one threat campaign and checks both the aggregate score (every
/// attack detected, zero false positives) and the multiset law.
fn run_threat(threat: ThreatKind, probability: f64, seed: u64) -> DetectionScore {
    let mut adversary = ScriptedAdversary::new(threat, probability, seed ^ 0xabcd);
    let (report, truth) = run_monitor(&config(seed), &mut adversary);
    assert_alert_multiset_matches_truth(threat, &report, &truth);
    score(threat, &report, &truth)
}

fn assert_clean_sweep(s: &DetectionScore) {
    assert!(s.attacks > 0, "{}: campaign injected nothing", s.threat);
    assert_eq!(s.detected, s.attacks, "{}", s.threat);
    assert_eq!(s.false_positives, 0, "{}", s.threat);
}

#[test]
fn tampered_requests_are_always_detected() {
    assert_clean_sweep(&run_threat(ThreatKind::TamperRequest, 0.2, 1));
}

#[test]
fn tampered_responses_are_always_detected() {
    assert_clean_sweep(&run_threat(ThreatKind::TamperResponse, 0.2, 2));
}

#[test]
fn lying_pdp_is_always_detected() {
    assert_clean_sweep(&run_threat(ThreatKind::CorruptDecision, 0.2, 3));
}

#[test]
fn rogue_pep_enforcement_is_always_detected() {
    assert_clean_sweep(&run_threat(ThreatKind::FlipEnforcement, 0.2, 4));
}

#[test]
fn dropped_logs_are_detected_via_epoch_timeout() {
    let s = run_threat(ThreatKind::DropLog, 0.1, 5);
    assert_clean_sweep(&s);
    // timeout-based detection is necessarily slower than digest matching
    assert!(s.mean_detection_latency_us >= 1_000_000.0);
}

#[test]
fn compromised_li_is_detected() {
    assert_clean_sweep(&run_threat(ThreatKind::TamperLog, 0.1, 6));
}

#[test]
fn policy_swap_is_detected() {
    let s = run_threat(ThreatKind::SwapPolicy, 1.0, 7);
    assert_eq!(s.attacks, 1);
    assert_eq!(s.detected, 1);
}

/// Colluding PDP + LI: the PDP corrupts a decision and the member-cloud
/// LI suppresses the evidence that would expose it. The suppressed
/// observation keeps the group from completing, so detection falls
/// through to the epoch timeout (or a late `PolicyViolation` when the
/// group did complete) — either way every colluded transaction alerts.
#[test]
fn colluding_pdp_and_li_is_detected() {
    let s = run_threat(ThreatKind::ColludePdpLi, 0.15, 10);
    assert_clean_sweep(&s);
}

#[test]
fn colluding_pdp_and_li_survives_higher_collusion_rates() {
    for p in [0.05, 0.3] {
        let s = run_threat(ThreatKind::ColludePdpLi, p, 11);
        assert_eq!(
            s.detected, s.attacks,
            "rate {p}: {} of {} detected",
            s.detected, s.attacks
        );
        assert_eq!(s.false_positives, 0, "rate {p}");
    }
}

/// Cross-tenant log replay: a compromised LI re-submits another
/// transaction's stale evidence under a fresh correlation. The spliced
/// entry carries the wrong probe MAC and mismatching pairwise digests,
/// so every replayed transaction raises a monitoring-plane alert.
#[test]
fn cross_tenant_log_replay_is_detected() {
    let s = run_threat(ThreatKind::ReplayLog, 0.15, 12);
    assert_clean_sweep(&s);
}

#[test]
fn cross_tenant_log_replay_survives_higher_replay_rates() {
    for p in [0.05, 0.3] {
        let s = run_threat(ThreatKind::ReplayLog, p, 13);
        assert_eq!(
            s.detected, s.attacks,
            "rate {p}: {} of {} detected",
            s.detected, s.attacks
        );
        assert_eq!(s.false_positives, 0, "rate {p}");
    }
}

#[test]
fn detection_survives_higher_attack_rates() {
    for p in [0.05, 0.3, 0.6] {
        let s = run_threat(ThreatKind::TamperResponse, p, 8);
        assert_eq!(
            s.detected, s.attacks,
            "rate {p}: {} of {} detected",
            s.detected, s.attacks
        );
    }
}

/// An honest run must score clean against **all nine** threat kinds,
/// and the multiset law must hold vacuously (no matching alerts at
/// all) for each of them.
#[test]
fn honest_runs_have_no_false_positives_across_threat_scoring() {
    let (report, truth) = run_monitor(&config(9), &mut drams::core::adversary::NoAdversary);
    assert_eq!(ThreatKind::ALL.len(), 9);
    for threat in ThreatKind::ALL {
        let s = score(threat, &report, &truth);
        assert_eq!(s.attacks, 0, "{threat}");
        assert_eq!(s.false_positives, 0, "{threat}");
        assert_alert_multiset_matches_truth(threat, &report, &truth);
    }
}
