//! Transport conformance: the DES as oracle for the real wire.
//!
//! The same `ScenarioSpec` is replayed over both transport backends —
//! the in-memory DES event queue and loopback TCP, where every
//! federation-crossing message is CRC-framed, carried through the
//! destination service's socket endpoint and scheduled from the bytes
//! that came back. The bar is DESIGN.md invariant 9: the transport
//! choice is observationally invisible — byte-identical canonical
//! alerts, identical ground truth, identical detection counters, for
//! honest, attacked and crash-restart scenarios alike.

use drams::attack::{ScriptedAdversary, ThreatKind};
use drams::core::adversary::{Adversary, NoAdversary};
use drams::core::monitor::{MonitorConfig, MonitorReport};
use drams::core::scenario::{
    run_scenario, run_scenario_with_transport, CrashTarget, ScenarioSpec, ScriptedAction,
};
use drams::crypto::codec::Encode;
use drams::net::TcpTransport;
use drams_bench::scenarios;
use drams_faas::des::MILLIS;

fn alert_bytes(report: &MonitorReport) -> Vec<Vec<u8>> {
    report
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect()
}

/// Runs `spec` over both backends and asserts observational equality.
/// Returns the TCP transport's wire counters so callers can assert the
/// wire actually carried traffic.
fn assert_conformant<A: Adversary, B: Adversary>(
    spec: &ScenarioSpec,
    des_adversary: &mut A,
    tcp_adversary: &mut B,
) -> drams::net::NetStats {
    let (des, des_truth) = run_scenario(spec, des_adversary);
    let mut transport = TcpTransport::loopback();
    let (tcp, tcp_truth) = run_scenario_with_transport(spec, tcp_adversary, &mut transport);
    let stats = transport.stats();
    assert!(
        stats.frames > 0,
        "{}: the TCP run must actually cross the wire",
        spec.name
    );
    assert_eq!(des_truth, tcp_truth, "{}: ground truth", spec.name);
    assert_eq!(
        alert_bytes(&des),
        alert_bytes(&tcp),
        "{}: canonical alert bytes must be identical",
        spec.name
    );
    assert_eq!(
        des.requests_completed, tcp.requests_completed,
        "{}: requests_completed",
        spec.name
    );
    assert_eq!(
        des.entries_logged, tcp.entries_logged,
        "{}: entries_logged",
        spec.name
    );
    assert_eq!(
        des.groups_completed, tcp.groups_completed,
        "{}: groups_completed",
        spec.name
    );
    assert_eq!(
        des.txs_committed, tcp.txs_committed,
        "{}: txs_committed",
        spec.name
    );
    assert_eq!(
        des.crash_restarts, tcp.crash_restarts,
        "{}: crash_restarts",
        spec.name
    );
    assert_eq!(
        des.retries_total, tcp.retries_total,
        "{}: retries_total",
        spec.name
    );
    assert_eq!(
        des.finished_at, tcp.finished_at,
        "{}: finished_at",
        spec.name
    );
    assert_eq!(
        des.e2e_latency.mean(),
        tcp.e2e_latency.mean(),
        "{}: e2e latency",
        spec.name
    );
    stats
}

/// The whole E10 matrix — steady state, burst + churn, policy flips, a
/// degraded LI and the per-cloud PDP federation — is byte-identical
/// over DES and loopback TCP.
#[test]
fn e10_matrix_is_identical_over_des_and_tcp() {
    for spec in scenarios::matrix(true) {
        assert_conformant(&spec, &mut NoAdversary, &mut NoAdversary);
    }
}

/// An attacked run: the adversary corrupts decisions, the Analyser
/// alerts — and the alert stream is byte-identical over both wires.
/// (The attack rides *inside* the services; the wire below them changes,
/// detection must not.)
#[test]
fn attacked_run_is_identical_over_des_and_tcp() {
    let config = MonitorConfig {
        total_requests: 80,
        request_rate_per_sec: 200.0,
        ..MonitorConfig::default()
    };
    let spec = ScenarioSpec {
        name: "attacked_transport".to_string(),
        ..ScenarioSpec::canonical(&config)
    };
    let (probe, _) = run_scenario(
        &spec,
        &mut ScriptedAdversary::new(ThreatKind::CorruptDecision, 0.2, 41),
    );
    assert!(
        !probe.alerts.is_empty(),
        "the attacked spec must alert for this test to bite"
    );
    let mut a = ScriptedAdversary::new(ThreatKind::CorruptDecision, 0.2, 41);
    let mut b = ScriptedAdversary::new(ThreatKind::CorruptDecision, 0.2, 41);
    assert_conformant(&spec, &mut a, &mut b);
}

/// A crash-restart run: a PDP dies mid-scenario. Over TCP this kills
/// the slot's real endpoint — the transport reconnects to a fresh one —
/// and the run still converges to the DES twin byte for byte.
#[test]
fn crash_restart_run_is_identical_over_des_and_tcp() {
    let config = MonitorConfig {
        total_requests: 80,
        request_rate_per_sec: 200.0,
        ..MonitorConfig::default()
    };
    let spec = ScenarioSpec {
        name: "crash_pdp_transport".to_string(),
        script: vec![ScriptedAction::CrashRestart {
            at: 400 * MILLIS,
            target: CrashTarget::Pdp(drams_faas::model::CloudId(0)),
        }],
        ..ScenarioSpec::canonical(&config)
    };
    let stats = assert_conformant(&spec, &mut NoAdversary, &mut NoAdversary);
    assert_eq!(stats.restarts, 1, "the endpoint must really have died");
    assert!(
        stats.connects >= 2,
        "the transport must have reconnected after the crash"
    );
}

/// The recovery matrix (every service crashed once) stays conformant
/// over the wire, including endpoint teardown/reconnect for the roles
/// that carry traffic.
#[test]
fn recovery_matrix_is_identical_over_des_and_tcp() {
    for spec in scenarios::recovery_matrix(true) {
        let stats = assert_conformant(&spec, &mut NoAdversary, &mut NoAdversary);
        assert_eq!(stats.restarts, 1, "{}", spec.name);
    }
}

/// Faulted runs: the fault plane's drop/duplicate/reorder decisions
/// compose with the wire — every surviving delivery (duplicates
/// included) crosses the socket and the outcome matches the DES twin.
#[test]
fn lossy_links_are_identical_over_des_and_tcp() {
    let config = MonitorConfig {
        total_requests: 60,
        request_rate_per_sec: 150.0,
        ..MonitorConfig::default()
    };
    let spec = ScenarioSpec {
        name: "lossy_transport".to_string(),
        faults: scenarios::lossy_plan(),
        ..ScenarioSpec::canonical(&config)
    };
    assert_conformant(&spec, &mut NoAdversary, &mut NoAdversary);
}
