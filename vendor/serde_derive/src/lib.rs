//! Offline stand-in for `serde_derive`.
//!
//! The workspace never serialises through serde — all persistent and
//! on-wire encodings go through the canonical codec in `drams-crypto` —
//! so `#[derive(Serialize, Deserialize)]` only needs to compile. The
//! vendored `serde` crate provides blanket impls of both marker traits,
//! which means these derives can expand to nothing at all.

use proc_macro::TokenStream;

/// No-op derive: the blanket impl in the vendored `serde` crate already
/// covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive: the blanket impl in the vendored `serde` crate already
/// covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
