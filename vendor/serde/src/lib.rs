//! Offline stand-in for `serde` 1.x.
//!
//! Provides the `Serialize` / `Deserialize` names the workspace imports,
//! as marker traits with blanket impls, plus the no-op derive macros.
//! Nothing in the workspace serialises through serde (the canonical
//! codec in `drams-crypto` is the only wire format), so marker semantics
//! are sufficient: any `T: Serialize` bound is trivially satisfied.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all
/// types so derive output can be empty.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types so derive output can be empty.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
