//! Offline stand-in for `criterion` 0.5.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! `drams-bench` targets use: [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] (with `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `finish`), [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`] and [`black_box`].
//!
//! Statistics are intentionally simple: each benchmark runs a short
//! warm-up followed by `sample_size` timed batches and reports the mean
//! time per iteration (plus derived throughput when declared). That is
//! enough to compare the relative cost of the paper's experiment knobs
//! without the real criterion's bootstrap analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared units of work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Hint for how expensive batch setup is. The stand-in treats all
/// variants identically (fresh input per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (joined to the group name when printed).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the measured closure and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: one small batch to page code in and let the routine pick
    // its own iteration count behaviour.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    // Aim for a handful of iterations per sample, scaled down if a
    // single iteration is slow (>= ~10ms).
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            println!("bench {name:<48} {mean_ns:>14.1} ns/iter  {mibs:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (mean_ns / 1e9);
            println!("bench {name:<48} {mean_ns:>14.1} ns/iter  {eps:>10.0} elem/s");
        }
        None => println!("bench {name:<48} {mean_ns:>14.1} ns/iter"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.default_sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3));
        });
        // Group with throughput + batched iteration.
        let mut group = c.benchmark_group("smoke-group");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("sum", 8), &vec![1u8; 8], |b, v| {
            b.iter(|| v.iter().map(|&x| u64::from(x)).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
        ran += 1;
        assert_eq!(ran, 1);
    }
}
