//! Offline stand-in for `proptest` 1.x.
//!
//! A deterministic property-testing harness implementing the subset of
//! the proptest API this workspace uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, [`Strategy`] with `prop_map`/`boxed`,
//! [`any`], ranges-as-strategies, tuple strategies, [`collection::vec`],
//! [`option::of`], [`array::uniform4`]/[`array::uniform8`],
//! [`prop_oneof!`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! the case index of the deterministic run instead of a minimized
//! input), and generation is driven by a fixed per-test seed derived
//! from the test name, so runs are reproducible across machines.

use std::fmt;

pub mod test_runner {
    //! Config and error types for generated test runners.

    use std::fmt;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case asked to be skipped (`prop_assume!` failed).
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// True for rejections (skipped, not failed).
        #[must_use]
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Deterministic generator driving value production (xoshiro256++,
/// seeded from the test name so every test is reproducible).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a), typically the test name.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    /// Seeds from a 64-bit value via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

/// A recipe for producing values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produces one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        (**self).sample_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Strategy producing exactly one value (clones of it).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary {
    /// Produces an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; build with [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between type-erased alternatives; build with
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from a non-empty list of alternatives.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample_value(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 0..16)` — vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`; build with [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(element)` — `Some` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample_value(rng))
            }
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `[T; N]`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample_value(rng))
        }
    }

    /// `[T; 4]` of independently-drawn elements.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }

    /// `[T; 8]` of independently-drawn elements.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
        UniformArray { element }
    }
}

/// `prop::` namespace, mirroring the real crate's prelude export.
pub mod prop {
    pub use crate::{array, collection, option};
}

pub mod prelude {
    //! Everything a property-test module needs.

    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases in {} ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    config.cases,
                );
                $(let $arg = $crate::Strategy::sample_value(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult =
                    (move || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => continue,
                    ::core::result::Result::Err(e) => panic!(
                        "proptest case {} of {} failed: {}",
                        passed + 1,
                        stringify!($name),
                        e
                    ),
                }
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategy alternatives producing a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = (3u64..9).sample_value(&mut rng);
            assert!((3..9).contains(&v));
            let o = crate::option::of(0u8..4).sample_value(&mut rng);
            assert!(o.is_none() || o.unwrap() < 4);
            let xs = crate::collection::vec(any::<bool>(), 1..5).sample_value(&mut rng);
            assert!((1..5).contains(&xs.len()));
            let arr = crate::array::uniform4(0u32..7).sample_value(&mut rng);
            assert!(arr.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            Just("a".to_string()),
            (0u8..10).prop_map(|n| format!("n{n}")),
        ];
        let mut rng = crate::TestRng::deterministic("oneof");
        for _ in 0..50 {
            let v = s.sample_value(&mut rng);
            assert!(v == "a" || v.starts_with('n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(x in 0u64..100, flag in any::<bool>()) {
            prop_assume!(x != 13 || flag);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
