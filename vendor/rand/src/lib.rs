//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the subset of the `rand` API the workspace uses:
//! [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` (over half-open and inclusive integer
//! ranges and half-open float ranges), `gen_bool` and `fill`.
//!
//! The generator is xoshiro256++ with SplitMix64 seed expansion — fast,
//! well-distributed, and fully deterministic for a given seed, which is
//! what the discrete-event simulations in this workspace rely on.
//! It is **not** cryptographically secure; nothing here uses it for key
//! material beyond simulation/test fixtures.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly. Implemented for the integer and
/// float range types the workspace passes to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Fills a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
